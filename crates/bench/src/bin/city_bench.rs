//! Emits `BENCH_city_cosim.json`: the machine-readable performance
//! trajectory of the city-scale tiered-fidelity engine.
//!
//! Usage: `city_bench [--test] [--out PATH]`
//!
//! The emitter first calibrates the two fidelity tiers in isolation — a
//! pure-surrogate chain (ns per surrogate vehicle-tick) and a single full
//! self-awareness stack (ns per full vehicle-tick) — then sweeps 10, 100
//! and 1,000-vehicle chains with 1, 2 and 4 focal stacks, reporting
//! ticks/s, vehicle×ticks/s and the per-tier cost split for each.
//!
//! The **thread-scaling** block then runs the 1,000v/4f workhorse and the
//! 10,000v/4f flagship through the intra-run parallel engine at 1, 2 and
//! 4 threads. Every run must produce a bit-identical [`CityOutcome`]
//! (asserted in-process); speedups are **modeled**, not measured — the
//! parallel tick is replayed in virtual time over single-thread
//! calibrated per-chunk / per-cluster costs
//! ([`saav_bench::replay::simulate_city_tick`]), the same
//! calibrate-then-replay methodology `fleet_bench`'s scheduling gate
//! uses, because on a single-core CI host every width measures the same
//! wall. Measured walls ride along as informational fields.
//!
//! Outside `--test` mode the process exits nonzero unless the calibrated
//! full/surrogate cost ratio is at least 50× — the acceptance floor that
//! makes 1,000-vehicle scenes tractable — and the modeled 4-thread
//! speedup on 1,000v/4f is at least 1.5×. `--test` shrinks every horizon
//! for CI smoke runs and skips both gates (short horizons are noisy);
//! the bit-identity assertions hold in every mode.
//!
//! JSON schema (`schema_version` 2): see the README's "City-scale
//! co-simulation" section.

use std::time::Instant;

use saav_bench::replay::simulate_city_tick;
use saav_core::outcome::CityOutcome;
use saav_core::runner;
use saav_core::scenario::{CitySpec, Scenario};
use saav_core::telemetry::{Counter, Telemetry};
use saav_sim::time::Duration;

/// Acceptance floor for the full/surrogate per-vehicle-tick cost ratio.
const MIN_TIER_RATIO: f64 = 50.0;
/// Acceptance floor for the modeled intra-run speedup of the 1,000v/4f
/// workhorse at the widest modeled width.
const MIN_PAR_SPEEDUP: f64 = 1.5;
/// Intra-run widths the thread-scaling block models.
const SCALE_THREADS: [usize; 3] = [1, 2, 4];
/// `(vehicles, focal, surrogate_chunk)` configurations of the
/// thread-scaling block. The workhorse uses 256-lane chunks so a
/// 1,000-lane store actually splits at the modeled widths; the 10,000v
/// flagship keeps the engine default.
const SCALE_CONFIGS: [(usize, usize, usize); 2] = [(1_000, 4, 256), (10_000, 4, 1_024)];
/// Repetitions per arm of the observability measurement (best-of).
const OBS_REPS: usize = 3;

/// The `(vehicles, focal)` grid the sweep covers.
const SWEEP: [(usize, usize); 9] = [
    (10, 1),
    (10, 2),
    (10, 4),
    (100, 1),
    (100, 2),
    (100, 4),
    (1_000, 1),
    (1_000, 2),
    (1_000, 4),
];

fn scenario(vehicles: usize, focal: usize, secs: u64) -> Scenario {
    Scenario::builder(format!("bench/{vehicles}v{focal}f"))
        .seed(7)
        .duration(Duration::from_secs(secs))
        .city(CitySpec::new(vehicles - focal, focal))
        .build()
}

/// Runs one scenario, returning its tier statistics and wall time (s).
fn run_timed(vehicles: usize, focal: usize, secs: u64) -> (CityOutcome, f64) {
    let start = Instant::now();
    let out = runner::run(scenario(vehicles, focal, secs));
    let wall = start.elapsed().as_secs_f64();
    (out.city.expect("city run"), wall)
}

struct SweepRow {
    vehicles: usize,
    focal: usize,
    ticks: u64,
    wall_s: f64,
    surrogate_vehicle_ticks: u64,
    full_vehicle_ticks: u64,
    promotions: u64,
    max_full_tier: usize,
    collision: bool,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let test_mode = args.iter().any(|a| a == "--test");
    let out_path = out_path(&args);
    let (horizon_s, calib_s) = if test_mode { (5, 2) } else { (60, 10) };

    // --- tier calibration ------------------------------------------------
    // Surrogate tier: a 1,000-vehicle chain with no focal stack.
    let (c, wall) = run_timed(1_000, 0, calib_s);
    let surrogate_ns = wall * 1e9 / c.surrogate_vehicle_ticks as f64;
    // Full tier: one focal stack and no background.
    let (c, wall) = run_timed(1, 1, calib_s);
    let full_ns = wall * 1e9 / c.full_vehicle_ticks as f64;
    let ratio = full_ns / surrogate_ns;
    eprintln!(
        "tier calibration: surrogate {surrogate_ns:.0} ns/vehicle-tick, \
         full {full_ns:.0} ns/vehicle-tick, ratio {ratio:.0}x"
    );

    // --- sweep -----------------------------------------------------------
    let rows: Vec<SweepRow> = SWEEP
        .iter()
        .map(|&(vehicles, focal)| {
            let (c, wall_s) = run_timed(vehicles, focal, horizon_s);
            eprintln!(
                "{vehicles:>5} vehicles / {focal} focal: {:.2} s wall, {:.0} ticks/s, \
                 {:.2}M vehicle-ticks/s",
                wall_s,
                c.ticks as f64 / wall_s,
                (c.surrogate_vehicle_ticks + c.full_vehicle_ticks) as f64 / wall_s / 1e6,
            );
            SweepRow {
                vehicles,
                focal,
                ticks: c.ticks,
                wall_s,
                surrogate_vehicle_ticks: c.surrogate_vehicle_ticks,
                full_vehicle_ticks: c.full_vehicle_ticks,
                promotions: c.promotions,
                max_full_tier: c.max_full_tier,
                collision: c.chain_collision || c.focal_collision_count() > 0,
            }
        })
        .collect();

    // --- thread scaling (gated on the modeled speedup) --------------------
    // Measured runs at every width double as the in-process determinism
    // check: the CityOutcome must be bit-identical at 1, 2 and 4 intra-run
    // threads. Speedups are replayed in virtual time over the calibrated
    // tier costs (see the module docs for why walls cannot gate here).
    struct ScaleRow {
        threads: usize,
        measured_wall_s: f64,
        modeled_wall_s: f64,
        modeled_speedup: f64,
    }
    struct ScaleConfig {
        vehicles: usize,
        focal: usize,
        chunk: usize,
        rows: Vec<ScaleRow>,
    }
    let mut scale_configs: Vec<ScaleConfig> = Vec::new();
    let mut gate_speedup = f64::INFINITY;
    for &(vehicles, focal, chunk) in &SCALE_CONFIGS {
        let mut measured: Vec<(usize, f64, CityOutcome)> = SCALE_THREADS
            .iter()
            .map(|&threads| {
                let s = Scenario::builder(format!("bench/{vehicles}v{focal}f/t{threads}"))
                    .seed(7)
                    .duration(Duration::from_secs(horizon_s))
                    .city(
                        CitySpec::new(vehicles - focal, focal)
                            .with_threads(threads)
                            .with_surrogate_chunk(chunk),
                    )
                    .build();
                let start = Instant::now();
                let out = runner::run(s);
                let wall = start.elapsed().as_secs_f64();
                (threads, wall, out.city.expect("city run"))
            })
            .collect();
        for (threads, _, c) in &measured[1..] {
            assert_eq!(
                &measured[0].2, c,
                "{vehicles}v/{focal}f diverged at {threads} intra-run threads"
            );
        }
        // Calibrated per-tick cost model: chunk costs from the surrogate
        // tier calibration (one third per barrier-separated pass), the
        // full tier spread over one cluster per focal vehicle (focal
        // neighborhoods are disjoint at these geometries), and the serial
        // residue taken from the measured single-thread wall.
        let (_, wall1, c1) = &measured[0];
        let ticks = c1.ticks as f64;
        let avg_full = c1.full_vehicle_ticks as f64 / ticks;
        let chunks = vehicles.div_ceil(chunk);
        let pass_chunk_s: Vec<f64> = (0..chunks)
            .map(|i| chunk.min(vehicles - i * chunk) as f64 * surrogate_ns * 1e-9 / 3.0)
            .collect();
        let cluster_s: Vec<f64> = vec![avg_full / focal as f64 * full_ns * 1e-9; focal];
        let busy_s = vehicles as f64 * surrogate_ns * 1e-9 + avg_full * full_ns * 1e-9;
        let serial_s = (wall1 / ticks - busy_s).max(0.0);
        let tick1_s = simulate_city_tick(&pass_chunk_s, &cluster_s, serial_s, 1);
        let rows: Vec<ScaleRow> = measured
            .drain(..)
            .map(|(threads, measured_wall_s, _)| {
                let tick_s = simulate_city_tick(&pass_chunk_s, &cluster_s, serial_s, threads);
                let modeled_speedup = tick1_s / tick_s.max(1e-12);
                eprintln!(
                    "scaling: {vehicles:>5}v/{focal}f chunk {chunk} @ {threads} thread(s) — \
                     modeled {:.3} s ({modeled_speedup:.2}x), measured {measured_wall_s:.3} s",
                    tick_s * ticks,
                );
                ScaleRow {
                    threads,
                    measured_wall_s,
                    modeled_wall_s: tick_s * ticks,
                    modeled_speedup,
                }
            })
            .collect();
        if vehicles == 1_000 {
            gate_speedup = rows.last().expect("at least one width").modeled_speedup;
        }
        scale_configs.push(ScaleConfig {
            vehicles,
            focal,
            chunk,
            rows,
        });
    }

    // --- observability (informational) -----------------------------------
    // The flagship 1,000v/2f row rerun unmounted vs with a telemetry sink
    // mounted, best of OBS_REPS each — the same noise-robust statistic the
    // gated version of this comparison in `fleet_bench` uses (a single
    // cold rep against the sweep row overstated the cost by an order of
    // magnitude). This block just records the cost alongside the sweep it
    // perturbs.
    let best_of = |run: &dyn Fn()| -> f64 {
        (0..OBS_REPS)
            .map(|_| {
                let start = Instant::now();
                run();
                start.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };
    let unmounted_wall_s = best_of(&|| {
        let _ = runner::run(scenario(1_000, 2, horizon_s));
    });
    let sink = Telemetry::default();
    let mounted_wall_s = best_of(&|| {
        let _ = runner::run_observed(scenario(1_000, 2, horizon_s), None, &sink);
    });
    let obs = sink.snapshot();
    let obs_overhead = mounted_wall_s / unmounted_wall_s.max(1e-9) - 1.0;
    eprintln!(
        "observability: 1000v/2f mounted {mounted_wall_s:.3} s vs unmounted {unmounted_wall_s:.3} s \
         ({:+.1}%, {} trace events/rep)",
        obs_overhead * 100.0,
        obs.events_recorded / OBS_REPS as u64,
    );

    // --- JSON ------------------------------------------------------------
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"city_cosim\",\n");
    json.push_str("  \"schema_version\": 2,\n");
    json.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if test_mode { "test" } else { "full" }
    ));
    json.push_str(&format!("  \"horizon_s\": {horizon_s},\n"));
    json.push_str("  \"tier_cost\": {\n");
    json.push_str(&format!(
        "    \"surrogate_ns_per_vehicle_tick\": {surrogate_ns:.1},\n"
    ));
    json.push_str(&format!(
        "    \"full_ns_per_vehicle_tick\": {full_ns:.1},\n"
    ));
    json.push_str(&format!("    \"full_over_surrogate\": {ratio:.1}\n"));
    json.push_str("  },\n");
    json.push_str("  \"sweep\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let total_ticks = r.surrogate_vehicle_ticks + r.full_vehicle_ticks;
        // Cost split estimated from the calibrated per-tick costs: what
        // share of the modeled work each tier accounts for.
        let surrogate_cost = r.surrogate_vehicle_ticks as f64 * surrogate_ns;
        let full_cost = r.full_vehicle_ticks as f64 * full_ns;
        let split = full_cost / (surrogate_cost + full_cost).max(1.0);
        json.push_str(&format!(
            "    {{\"vehicles\": {}, \"focal\": {}, \"ticks\": {}, \"wall_s\": {:.3}, \
             \"ticks_per_s\": {:.1}, \"vehicle_ticks_per_s\": {:.1}, \
             \"surrogate_vehicle_ticks\": {}, \"full_vehicle_ticks\": {}, \
             \"full_tier_cost_share\": {:.3}, \"promotions\": {}, \
             \"max_full_tier\": {}, \"collision\": {}}}{}\n",
            r.vehicles,
            r.focal,
            r.ticks,
            r.wall_s,
            r.ticks as f64 / r.wall_s,
            total_ticks as f64 / r.wall_s,
            r.surrogate_vehicle_ticks,
            r.full_vehicle_ticks,
            split,
            r.promotions,
            r.max_full_tier,
            r.collision,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"thread_scaling\": {\n");
    json.push_str(
        "    \"methodology\": \"outcome bit-identity asserted across widths in-process; \
speedups replayed in virtual time over single-thread-calibrated per-chunk and per-cluster \
costs (three barrier-separated surrogate passes + cluster phase + serial residue)\",\n",
    );
    json.push_str("    \"gate_config\": \"1000v/4f\",\n");
    json.push_str(&format!("    \"min_speedup\": {MIN_PAR_SPEEDUP},\n"));
    json.push_str(&format!("    \"gate_speedup\": {gate_speedup:.2},\n"));
    json.push_str("    \"configs\": [\n");
    for (i, cfg) in scale_configs.iter().enumerate() {
        json.push_str(&format!(
            "      {{\"vehicles\": {}, \"focal\": {}, \"surrogate_chunk\": {}, \"rows\": [\n",
            cfg.vehicles, cfg.focal, cfg.chunk
        ));
        for (j, r) in cfg.rows.iter().enumerate() {
            json.push_str(&format!(
                "        {{\"threads\": {}, \"measured_wall_s\": {:.3}, \
                 \"modeled_wall_s\": {:.3}, \"modeled_speedup\": {:.2}}}{}\n",
                r.threads,
                r.measured_wall_s,
                r.modeled_wall_s,
                r.modeled_speedup,
                if j + 1 < cfg.rows.len() { "," } else { "" },
            ));
        }
        json.push_str(&format!(
            "      ]}}{}\n",
            if i + 1 < scale_configs.len() { "," } else { "" }
        ));
    }
    json.push_str("    ]\n");
    json.push_str("  },\n");
    json.push_str("  \"observability_overhead\": {\n");
    json.push_str("    \"scenario\": \"city 1000v/2f\",\n");
    json.push_str("    \"informational\": true,\n");
    json.push_str(&format!("    \"reps\": {OBS_REPS},\n"));
    json.push_str(&format!(
        "    \"unmounted_wall_s\": {unmounted_wall_s:.3},\n"
    ));
    json.push_str(&format!("    \"mounted_wall_s\": {mounted_wall_s:.3},\n"));
    json.push_str(&format!("    \"overhead_frac\": {obs_overhead:.4},\n"));
    json.push_str(&format!(
        "    \"mounted_counters\": {{\"tier_promotions\": {}, \"tier_demotions\": {}, \
         \"events_recorded\": {}}}\n",
        obs.counter(Counter::TierPromotions),
        obs.counter(Counter::TierDemotions),
        obs.events_recorded,
    ));
    json.push_str("  }\n}\n");
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    eprintln!("wrote {out_path}");

    // --- acceptance gates ------------------------------------------------
    if !test_mode {
        let mut failed = false;
        if ratio < MIN_TIER_RATIO {
            eprintln!(
                "FAIL: full/surrogate cost ratio {ratio:.1}x is below the \
                 {MIN_TIER_RATIO:.0}x floor — the surrogate tier is not cheap \
                 enough to carry city-scale background traffic"
            );
            failed = true;
        }
        if gate_speedup < MIN_PAR_SPEEDUP {
            eprintln!(
                "FAIL: modeled 1000v/4f speedup {gate_speedup:.2}x at \
                 {} intra-run threads is below the {MIN_PAR_SPEEDUP:.1}x floor — \
                 the parallel city engine is not paying for its barriers",
                SCALE_THREADS[SCALE_THREADS.len() - 1]
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
    }
}

/// Parses `--out PATH` / `--out=PATH`; defaults to `BENCH_city_cosim.json`.
fn out_path(args: &[String]) -> String {
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        if let Some(v) = a.strip_prefix("--out=") {
            return v.to_string();
        }
        if a == "--out" {
            if let Some(v) = iter.next() {
                return v.clone();
            }
        }
    }
    "BENCH_city_cosim.json".to_string()
}
