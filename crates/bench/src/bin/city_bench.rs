//! Emits `BENCH_city_cosim.json`: the machine-readable performance
//! trajectory of the city-scale tiered-fidelity engine.
//!
//! Usage: `city_bench [--test] [--out PATH]`
//!
//! The emitter first calibrates the two fidelity tiers in isolation — a
//! pure-surrogate chain (ns per surrogate vehicle-tick) and a single full
//! self-awareness stack (ns per full vehicle-tick) — then sweeps 10, 100
//! and 1,000-vehicle chains with 1, 2 and 4 focal stacks, reporting
//! ticks/s, vehicle×ticks/s and the per-tier cost split for each.
//!
//! Outside `--test` mode the process exits nonzero unless the calibrated
//! full/surrogate cost ratio is at least 50× — the acceptance floor that
//! makes 1,000-vehicle scenes tractable. `--test` shrinks every horizon
//! for CI smoke runs and skips the ratio gate (short horizons are noisy).
//!
//! JSON schema (`schema_version` 1): see the README's "City-scale
//! co-simulation" section.

use std::time::Instant;

use saav_core::outcome::CityOutcome;
use saav_core::runner;
use saav_core::scenario::{CitySpec, Scenario};
use saav_core::telemetry::{Counter, Telemetry};
use saav_sim::time::Duration;

/// Acceptance floor for the full/surrogate per-vehicle-tick cost ratio.
const MIN_TIER_RATIO: f64 = 50.0;

/// The `(vehicles, focal)` grid the sweep covers.
const SWEEP: [(usize, usize); 9] = [
    (10, 1),
    (10, 2),
    (10, 4),
    (100, 1),
    (100, 2),
    (100, 4),
    (1_000, 1),
    (1_000, 2),
    (1_000, 4),
];

fn scenario(vehicles: usize, focal: usize, secs: u64) -> Scenario {
    Scenario::builder(format!("bench/{vehicles}v{focal}f"))
        .seed(7)
        .duration(Duration::from_secs(secs))
        .city(CitySpec::new(vehicles - focal, focal))
        .build()
}

/// Runs one scenario, returning its tier statistics and wall time (s).
fn run_timed(vehicles: usize, focal: usize, secs: u64) -> (CityOutcome, f64) {
    let start = Instant::now();
    let out = runner::run(scenario(vehicles, focal, secs));
    let wall = start.elapsed().as_secs_f64();
    (out.city.expect("city run"), wall)
}

struct SweepRow {
    vehicles: usize,
    focal: usize,
    ticks: u64,
    wall_s: f64,
    surrogate_vehicle_ticks: u64,
    full_vehicle_ticks: u64,
    promotions: u64,
    max_full_tier: usize,
    collision: bool,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let test_mode = args.iter().any(|a| a == "--test");
    let out_path = out_path(&args);
    let (horizon_s, calib_s) = if test_mode { (5, 2) } else { (60, 10) };

    // --- tier calibration ------------------------------------------------
    // Surrogate tier: a 1,000-vehicle chain with no focal stack.
    let (c, wall) = run_timed(1_000, 0, calib_s);
    let surrogate_ns = wall * 1e9 / c.surrogate_vehicle_ticks as f64;
    // Full tier: one focal stack and no background.
    let (c, wall) = run_timed(1, 1, calib_s);
    let full_ns = wall * 1e9 / c.full_vehicle_ticks as f64;
    let ratio = full_ns / surrogate_ns;
    eprintln!(
        "tier calibration: surrogate {surrogate_ns:.0} ns/vehicle-tick, \
         full {full_ns:.0} ns/vehicle-tick, ratio {ratio:.0}x"
    );

    // --- sweep -----------------------------------------------------------
    let rows: Vec<SweepRow> = SWEEP
        .iter()
        .map(|&(vehicles, focal)| {
            let (c, wall_s) = run_timed(vehicles, focal, horizon_s);
            eprintln!(
                "{vehicles:>5} vehicles / {focal} focal: {:.2} s wall, {:.0} ticks/s, \
                 {:.2}M vehicle-ticks/s",
                wall_s,
                c.ticks as f64 / wall_s,
                (c.surrogate_vehicle_ticks + c.full_vehicle_ticks) as f64 / wall_s / 1e6,
            );
            SweepRow {
                vehicles,
                focal,
                ticks: c.ticks,
                wall_s,
                surrogate_vehicle_ticks: c.surrogate_vehicle_ticks,
                full_vehicle_ticks: c.full_vehicle_ticks,
                promotions: c.promotions,
                max_full_tier: c.max_full_tier,
                collision: c.chain_collision || c.focal_collision_count() > 0,
            }
        })
        .collect();

    // --- observability (informational) -----------------------------------
    // The flagship 1,000v/2f row rerun with a telemetry sink mounted; the
    // gated version of this comparison lives in `fleet_bench`, this block
    // just records the cost alongside the sweep it perturbs.
    let flagship = rows
        .iter()
        .find(|r| r.vehicles == 1_000 && r.focal == 2)
        .expect("sweep covers 1000v/2f");
    let sink = Telemetry::default();
    let start = Instant::now();
    let _ = runner::run_observed(scenario(1_000, 2, horizon_s), None, &sink);
    let mounted_wall_s = start.elapsed().as_secs_f64();
    let obs = sink.snapshot();
    let obs_overhead = mounted_wall_s / flagship.wall_s.max(1e-9) - 1.0;
    eprintln!(
        "observability: 1000v/2f mounted {mounted_wall_s:.3} s vs unmounted {:.3} s \
         ({:+.1}%, {} trace events)",
        flagship.wall_s,
        obs_overhead * 100.0,
        obs.events_recorded,
    );

    // --- JSON ------------------------------------------------------------
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"city_cosim\",\n");
    json.push_str("  \"schema_version\": 1,\n");
    json.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if test_mode { "test" } else { "full" }
    ));
    json.push_str(&format!("  \"horizon_s\": {horizon_s},\n"));
    json.push_str("  \"tier_cost\": {\n");
    json.push_str(&format!(
        "    \"surrogate_ns_per_vehicle_tick\": {surrogate_ns:.1},\n"
    ));
    json.push_str(&format!(
        "    \"full_ns_per_vehicle_tick\": {full_ns:.1},\n"
    ));
    json.push_str(&format!("    \"full_over_surrogate\": {ratio:.1}\n"));
    json.push_str("  },\n");
    json.push_str("  \"sweep\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let total_ticks = r.surrogate_vehicle_ticks + r.full_vehicle_ticks;
        // Cost split estimated from the calibrated per-tick costs: what
        // share of the modeled work each tier accounts for.
        let surrogate_cost = r.surrogate_vehicle_ticks as f64 * surrogate_ns;
        let full_cost = r.full_vehicle_ticks as f64 * full_ns;
        let split = full_cost / (surrogate_cost + full_cost).max(1.0);
        json.push_str(&format!(
            "    {{\"vehicles\": {}, \"focal\": {}, \"ticks\": {}, \"wall_s\": {:.3}, \
             \"ticks_per_s\": {:.1}, \"vehicle_ticks_per_s\": {:.1}, \
             \"surrogate_vehicle_ticks\": {}, \"full_vehicle_ticks\": {}, \
             \"full_tier_cost_share\": {:.3}, \"promotions\": {}, \
             \"max_full_tier\": {}, \"collision\": {}}}{}\n",
            r.vehicles,
            r.focal,
            r.ticks,
            r.wall_s,
            r.ticks as f64 / r.wall_s,
            total_ticks as f64 / r.wall_s,
            r.surrogate_vehicle_ticks,
            r.full_vehicle_ticks,
            split,
            r.promotions,
            r.max_full_tier,
            r.collision,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"observability_overhead\": {\n");
    json.push_str("    \"scenario\": \"city 1000v/2f\",\n");
    json.push_str("    \"informational\": true,\n");
    json.push_str(&format!(
        "    \"unmounted_wall_s\": {:.3},\n",
        flagship.wall_s
    ));
    json.push_str(&format!("    \"mounted_wall_s\": {mounted_wall_s:.3},\n"));
    json.push_str(&format!("    \"overhead_frac\": {obs_overhead:.4},\n"));
    json.push_str(&format!(
        "    \"mounted_counters\": {{\"tier_promotions\": {}, \"tier_demotions\": {}, \
         \"events_recorded\": {}}}\n",
        obs.counter(Counter::TierPromotions),
        obs.counter(Counter::TierDemotions),
        obs.events_recorded,
    ));
    json.push_str("  }\n}\n");
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    eprintln!("wrote {out_path}");

    // --- acceptance gate -------------------------------------------------
    if !test_mode && ratio < MIN_TIER_RATIO {
        eprintln!(
            "FAIL: full/surrogate cost ratio {ratio:.1}x is below the \
             {MIN_TIER_RATIO:.0}x floor — the surrogate tier is not cheap \
             enough to carry city-scale background traffic"
        );
        std::process::exit(1);
    }
}

/// Parses `--out PATH` / `--out=PATH`; defaults to `BENCH_city_cosim.json`.
fn out_path(args: &[String]) -> String {
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        if let Some(v) = a.strip_prefix("--out=") {
            return v.to_string();
        }
        if a == "--out" {
            if let Some(v) = iter.next() {
                return v.clone();
            }
        }
    }
    "BENCH_city_cosim.json".to_string()
}
