//! Emits `BENCH_fleet_throughput.json`: the machine-readable performance
//! trajectory of the incremental fleet engine.
//!
//! Usage: `fleet_bench [--test] [--out PATH]`
//!
//! Three phases:
//!
//! 1. **Memoization** — the full E11 grid (every scenario family × every
//!    strategy) swept cold through a cache-mounted [`FleetRunner`], then
//!    swept again warm. The warm sweep simulates nothing, so its wall
//!    time is pure cache traffic; the acceptance floor is a ≥ 10× warm
//!    speedup.
//! 2. **Scheduling** — a skewed job mix (one long run amid a grid of
//!    short ones). Per-job costs are calibrated by timing each job once
//!    single-threaded, then the static-chunk and work-steal schedules
//!    are replayed over those costs in virtual time, mirroring the shard
//!    executor's exact policy (drain your own shard, then steal from the
//!    richest). The reported makespans are therefore deterministic and
//!    host-independent — on this single-core CI box, wall time cannot
//!    distinguish schedulers, calibrated makespan can. Acceptance floor:
//!    work stealing ≥ 1.3× over static chunking.
//! 3. **Scaling** — wall time of the skewed mix at 1..N worker threads,
//!    informational (no gate; single-core hosts converge).
//! 4. **Observability** — the flagship 1,000-vehicle / 2-focal city run
//!    timed unmounted vs with a [`Telemetry`] sink mounted (best of
//!    several reps each), once through the sequential city engine and
//!    once through the parallel engine (4 intra-run threads). Acceptance
//!    ceiling on both arms: mounted overhead ≤ 5%, so tracing never
//!    becomes something you switch off before measuring — not even on
//!    the multi-core path, where telemetry runs through per-cluster
//!    scratches.
//!
//! Outside `--test` mode the process exits nonzero if any floor (or the
//! overhead ceiling) is missed. `--test` shrinks every duration for CI
//! smoke runs and skips the gates (short horizons are noisy).
//!
//! JSON schema (`schema_version` 2): see the README's "Fleet engine"
//! section.

use std::time::Instant;

use saav_bench::replay::simulate_schedule;
use saav_core::cache::ResultCache;
use saav_core::executor::Scheduler;
use saav_core::fleet::FleetRunner;
use saav_core::scenario::{CitySpec, ResponseStrategy, Scenario, ScenarioFamily};
use saav_core::telemetry::{Counter, Telemetry};
use saav_sim::time::Duration;

/// Acceptance floor: warm (cache-hit) sweep wall-time speedup over cold.
const MIN_WARM_SPEEDUP: f64 = 10.0;
/// Acceptance floor: work-steal makespan advantage over static chunking
/// on the skewed mix.
const MIN_STEAL_SPEEDUP: f64 = 1.3;
/// Workers the scheduling phase models.
const SCHED_WORKERS: usize = 4;
/// Acceptance ceiling: mounted-telemetry wall-time overhead on the
/// flagship city run.
const MAX_OBS_OVERHEAD: f64 = 0.05;
/// Repetitions per arm of the observability measurement (best-of).
const OBS_REPS: usize = 5;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let test_mode = args.iter().any(|a| a == "--test");
    let out_path = out_path(&args);
    let master_seed = 2024;

    // --- phase 1: memoized cold vs warm sweep ----------------------------
    let grid_jobs = || -> Vec<Scenario> {
        let mut jobs = Vec::new();
        for &family in &ScenarioFamily::ALL {
            for &strategy in &ResponseStrategy::ALL {
                let mut s = family.build(strategy, 0);
                if test_mode {
                    s.duration = Duration::from_secs(5);
                }
                jobs.push(s);
            }
        }
        jobs
    };
    let cache = ResultCache::in_memory();
    let runner = FleetRunner::new(master_seed).with_cache(cache.clone());
    let start = Instant::now();
    let cold = runner.run_scenarios(grid_jobs());
    let cold_wall_s = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let warm = runner.run_scenarios(grid_jobs());
    let warm_wall_s = start.elapsed().as_secs_f64();
    assert_eq!(cold.records, warm.records, "warm sweep diverged from cold");
    let cache_stats = cache.stats();
    let warm_speedup = cold_wall_s / warm_wall_s.max(1e-9);
    let grid = cold.records.len();
    eprintln!(
        "memoization: {grid}-run grid cold {cold_wall_s:.3} s, warm {warm_wall_s:.6} s \
         ({warm_speedup:.0}x, {} hits / {} misses)",
        cache_stats.hits, cache_stats.misses
    );

    // --- phase 2: scheduling on a skewed mix -----------------------------
    // One long job leading a grid of short ones: static chunking strands
    // the long job's blockmates behind it, stealing redistributes them.
    let (heavy_s, light_s) = if test_mode { (9, 1) } else { (45, 5) };
    let skewed_jobs = || -> Vec<Scenario> {
        let mut jobs = Vec::new();
        let mut heavy = ScenarioFamily::Intrusion.build(ResponseStrategy::CrossLayer, 0);
        heavy.duration = Duration::from_secs(heavy_s);
        heavy.label = "skew/heavy".into();
        jobs.push(heavy);
        for i in 0..27 {
            let family = ScenarioFamily::ALL[i % ScenarioFamily::ALL.len()];
            let strategy = ResponseStrategy::ALL[i % ResponseStrategy::ALL.len()];
            let mut s = family.build(strategy, 0);
            s.duration = Duration::from_secs(light_s);
            jobs.push(s);
        }
        jobs
    };
    // Calibrate per-job costs single-threaded (job results are identical
    // under any scheduler, so the costs transfer).
    let calib_jobs = skewed_jobs();
    let mut costs_s = Vec::with_capacity(calib_jobs.len());
    {
        let mut jobs = calib_jobs;
        for (i, s) in jobs.iter_mut().enumerate() {
            s.seed = i as u64; // seeding is irrelevant to cost calibration
        }
        for s in &jobs {
            let start = Instant::now();
            let _ = saav_core::runner::run(s.clone());
            costs_s.push(start.elapsed().as_secs_f64());
        }
    }
    let static_makespan_s = simulate_schedule(&costs_s, SCHED_WORKERS, false);
    let steal_makespan_s = simulate_schedule(&costs_s, SCHED_WORKERS, true);
    let steal_speedup = static_makespan_s / steal_makespan_s.max(1e-9);
    eprintln!(
        "scheduling: {} jobs on {SCHED_WORKERS} workers — static makespan {:.3} s, \
         steal makespan {:.3} s ({steal_speedup:.2}x)",
        costs_s.len(),
        static_makespan_s,
        steal_makespan_s,
    );
    // Cross-check: both schedulers produce bit-identical batches.
    let steal_out = FleetRunner::new(master_seed)
        .with_threads(SCHED_WORKERS)
        .with_scheduler(Scheduler::WorkSteal)
        .run_scenarios(skewed_jobs());
    let static_out = FleetRunner::new(master_seed)
        .with_threads(SCHED_WORKERS)
        .with_scheduler(Scheduler::StaticChunk)
        .run_scenarios(skewed_jobs());
    assert_eq!(
        steal_out.records, static_out.records,
        "schedulers must not change results"
    );

    // --- phase 3: thread scaling (informational) -------------------------
    let mut scaling = Vec::new();
    for threads in [1usize, 2, SCHED_WORKERS] {
        let runner = FleetRunner::new(master_seed).with_threads(threads);
        let start = Instant::now();
        let out = runner.run_scenarios(skewed_jobs());
        let wall_s = start.elapsed().as_secs_f64();
        eprintln!(
            "scaling: {threads} thread(s) {wall_s:.3} s ({:.1} jobs/s)",
            out.records.len() as f64 / wall_s
        );
        scaling.push((threads, wall_s, out.records.len() as f64 / wall_s));
    }

    // --- phase 4: observability overhead on the flagship city run --------
    // Unmounted vs mounted wall time, best of OBS_REPS each; best-of is
    // the most noise-robust statistic for a ratio gate on a shared host.
    let flagship_s = if test_mode { 5 } else { 60 };
    let flagship = |threads: usize| -> Scenario {
        let mut spec = CitySpec::new(998, 2).with_threads(threads);
        if threads > 1 {
            // Chunks sized so a 1,000-lane store actually splits at the
            // modeled widths (the 1,024 default leaves it whole).
            spec = spec.with_surrogate_chunk(256);
        }
        Scenario::builder("obs/1000v2f")
            .seed(master_seed)
            .duration(Duration::from_secs(flagship_s))
            .city(spec)
            .build()
    };
    let best_of = |run: &dyn Fn()| -> f64 {
        (0..OBS_REPS)
            .map(|_| {
                let start = Instant::now();
                run();
                start.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };
    // Sequential arm: the single-thread engine (pure inline loop).
    let unmounted_wall_s = best_of(&|| {
        let _ = saav_core::runner::run(flagship(1));
    });
    let sink = Telemetry::default();
    let mounted_wall_s = best_of(&|| {
        let _ = saav_core::runner::run_observed(flagship(1), None, &sink);
    });
    let obs_overhead = mounted_wall_s / unmounted_wall_s.max(1e-9) - 1.0;
    let obs = sink.snapshot();
    eprintln!(
        "observability: flagship 1000v/2f {flagship_s} s — unmounted {unmounted_wall_s:.3} s, \
         mounted {mounted_wall_s:.3} s ({:+.1}% overhead, {} events/rep)",
        obs_overhead * 100.0,
        obs.events_recorded / OBS_REPS as u64,
    );
    // Parallel arm: the same run through the 4-thread engine, where
    // telemetry flows through forked per-cluster scratches. The trace is
    // bit-identical to the sequential arm's by construction; this arm
    // gates its *cost*.
    const OBS_PAR_THREADS: usize = 4;
    let par_unmounted_wall_s = best_of(&|| {
        let _ = saav_core::runner::run(flagship(OBS_PAR_THREADS));
    });
    let par_sink = Telemetry::default();
    let par_mounted_wall_s = best_of(&|| {
        let _ = saav_core::runner::run_observed(flagship(OBS_PAR_THREADS), None, &par_sink);
    });
    let par_obs_overhead = par_mounted_wall_s / par_unmounted_wall_s.max(1e-9) - 1.0;
    eprintln!(
        "observability: parallel ({OBS_PAR_THREADS} threads) — unmounted {par_unmounted_wall_s:.3} s, \
         mounted {par_mounted_wall_s:.3} s ({:+.1}% overhead)",
        par_obs_overhead * 100.0,
    );

    // --- JSON ------------------------------------------------------------
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"fleet_throughput\",\n");
    json.push_str("  \"schema_version\": 2,\n");
    json.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if test_mode { "test" } else { "full" }
    ));
    json.push_str("  \"memoization\": {\n");
    json.push_str(&format!("    \"grid_jobs\": {grid},\n"));
    json.push_str(&format!("    \"cold_wall_s\": {cold_wall_s:.4},\n"));
    json.push_str(&format!("    \"warm_wall_s\": {warm_wall_s:.6},\n"));
    json.push_str(&format!("    \"warm_speedup\": {warm_speedup:.1},\n"));
    json.push_str(&format!(
        "    \"cache\": {{\"hits\": {}, \"misses\": {}, \"insertions\": {}}}\n",
        cache_stats.hits, cache_stats.misses, cache_stats.insertions
    ));
    json.push_str("  },\n");
    json.push_str("  \"scheduling\": {\n");
    json.push_str(
        "    \"methodology\": \"per-job costs calibrated single-threaded, \
schedules replayed in virtual time mirroring the shard executor policy\",\n",
    );
    json.push_str(&format!("    \"workers\": {SCHED_WORKERS},\n"));
    json.push_str(&format!("    \"jobs\": {},\n", costs_s.len()));
    json.push_str(&format!("    \"heavy_job_s\": {heavy_s},\n"));
    json.push_str(&format!("    \"light_job_s\": {light_s},\n"));
    json.push_str(&format!(
        "    \"static_makespan_s\": {static_makespan_s:.4},\n"
    ));
    json.push_str(&format!(
        "    \"steal_makespan_s\": {steal_makespan_s:.4},\n"
    ));
    json.push_str(&format!("    \"steal_speedup\": {steal_speedup:.2}\n"));
    json.push_str("  },\n");
    json.push_str("  \"scaling\": [\n");
    for (i, (threads, wall_s, jobs_per_s)) in scaling.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"threads\": {threads}, \"wall_s\": {wall_s:.3}, \
             \"jobs_per_s\": {jobs_per_s:.1}}}{}\n",
            if i + 1 < scaling.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"observability_overhead\": {\n");
    json.push_str("    \"scenario\": \"city 1000v/2f\",\n");
    json.push_str(&format!("    \"horizon_s\": {flagship_s},\n"));
    json.push_str(&format!("    \"reps\": {OBS_REPS},\n"));
    json.push_str(&format!(
        "    \"unmounted_wall_s\": {unmounted_wall_s:.4},\n"
    ));
    json.push_str(&format!("    \"mounted_wall_s\": {mounted_wall_s:.4},\n"));
    json.push_str(&format!("    \"overhead_frac\": {obs_overhead:.4},\n"));
    json.push_str(&format!("    \"max_overhead_frac\": {MAX_OBS_OVERHEAD},\n"));
    json.push_str(&format!(
        "    \"parallel\": {{\"threads\": {OBS_PAR_THREADS}, \
         \"unmounted_wall_s\": {par_unmounted_wall_s:.4}, \
         \"mounted_wall_s\": {par_mounted_wall_s:.4}, \
         \"overhead_frac\": {par_obs_overhead:.4}}},\n"
    ));
    json.push_str(&format!(
        "    \"mounted_counters\": {{\"anomalies_raised\": {}, \"escalations_routed\": {}, \
         \"tier_promotions\": {}, \"tier_demotions\": {}, \"events_recorded\": {}}}\n",
        obs.counter(Counter::AnomaliesRaised),
        obs.counter(Counter::EscalationsRouted),
        obs.counter(Counter::TierPromotions),
        obs.counter(Counter::TierDemotions),
        obs.events_recorded,
    ));
    json.push_str("  }\n}\n");
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    eprintln!("wrote {out_path}");

    // --- acceptance gates ------------------------------------------------
    if !test_mode {
        let mut failed = false;
        if warm_speedup < MIN_WARM_SPEEDUP {
            eprintln!(
                "FAIL: warm sweep speedup {warm_speedup:.1}x is below the \
                 {MIN_WARM_SPEEDUP:.0}x floor — the result cache is not paying"
            );
            failed = true;
        }
        if steal_speedup < MIN_STEAL_SPEEDUP {
            eprintln!(
                "FAIL: work-steal speedup {steal_speedup:.2}x is below the \
                 {MIN_STEAL_SPEEDUP:.1}x floor on the skewed mix"
            );
            failed = true;
        }
        if obs_overhead > MAX_OBS_OVERHEAD {
            eprintln!(
                "FAIL: mounted-telemetry overhead {:.1}% exceeds the {:.0}% ceiling \
                 on the flagship city run — tracing has become too expensive to leave on",
                obs_overhead * 100.0,
                MAX_OBS_OVERHEAD * 100.0
            );
            failed = true;
        }
        if par_obs_overhead > MAX_OBS_OVERHEAD {
            eprintln!(
                "FAIL: mounted-telemetry overhead {:.1}% exceeds the {:.0}% ceiling \
                 on the parallel ({OBS_PAR_THREADS}-thread) city run — per-cluster \
                 telemetry scratches have become too expensive to leave on",
                par_obs_overhead * 100.0,
                MAX_OBS_OVERHEAD * 100.0
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
    }
}

/// Parses `--out PATH` / `--out=PATH`; defaults to
/// `BENCH_fleet_throughput.json`.
fn out_path(args: &[String]) -> String {
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        if let Some(v) = a.strip_prefix("--out=") {
            return v.to_string();
        }
        if a == "--out" {
            if let Some(v) = iter.next() {
                return v.clone();
            }
        }
    }
    "BENCH_fleet_throughput.json".to_string()
}
