//! Risk-aware route planning under weather uncertainty.
//!
//! Sec. V: *"if the system was aware that its systems may degrade on a
//! certain route due to possible weather influences, it could plan
//! alternative routes … whether it plans a (possibly shorter) route across
//! an alpine pass in winter or whether it is advantageous to take a longer
//! detour without risking degraded performance."*
//!
//! Edges carry a base travel time, a *weather exposure* and a forecast
//! probability of bad weather. The risk-aware cost is the expected travel
//! time plus a risk penalty for potential degradation; a naive planner sees
//! only base times. Shortest paths via Dijkstra.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Node index in a road graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RoadNode(pub usize);

/// A directed road segment.
#[derive(Debug, Clone)]
pub struct RoadEdge {
    /// Source node.
    pub from: RoadNode,
    /// Destination node.
    pub to: RoadNode,
    /// Travel time in good conditions (minutes).
    pub base_min: f64,
    /// How strongly bad weather degrades this segment (`[0, 1]`).
    pub exposure: f64,
    /// Forecast probability of bad weather on this segment (`[0, 1]`).
    pub p_bad: f64,
}

/// Planner cost model.
#[derive(Debug, Clone, Copy)]
pub enum CostModel {
    /// Ignore weather: cost = base time (the baseline planner).
    Naive,
    /// Expected time plus risk penalty:
    /// `base·(1 + exposure·p_bad·slowdown) + λ·exposure·p_bad·base`.
    RiskAware {
        /// Relative slowdown when caught in bad weather (e.g. 1.0 =
        /// doubled travel time).
        slowdown: f64,
        /// Risk aversion weight λ for the degradation penalty.
        risk_weight: f64,
    },
}

impl CostModel {
    fn edge_cost(&self, e: &RoadEdge) -> f64 {
        match *self {
            CostModel::Naive => e.base_min,
            CostModel::RiskAware {
                slowdown,
                risk_weight,
            } => {
                let expected = e.base_min * (1.0 + e.exposure * e.p_bad * slowdown);
                let penalty = risk_weight * e.exposure * e.p_bad * e.base_min;
                expected + penalty
            }
        }
    }
}

/// A road network.
#[derive(Debug, Clone, Default)]
pub struct RoadGraph {
    node_count: usize,
    edges: Vec<RoadEdge>,
}

/// A planned route.
#[derive(Debug, Clone, PartialEq)]
pub struct Route {
    /// Node sequence from start to goal.
    pub nodes: Vec<RoadNode>,
    /// Total cost under the planner's model.
    pub cost: f64,
}

impl RoadGraph {
    /// Creates a graph with `node_count` nodes and no edges.
    pub fn new(node_count: usize) -> Self {
        RoadGraph {
            node_count,
            edges: Vec::new(),
        }
    }

    /// Adds a bidirectional road segment.
    ///
    /// # Panics
    /// Panics if a node is out of range or parameters are out of bounds.
    pub fn add_road(&mut self, a: RoadNode, b: RoadNode, base_min: f64, exposure: f64, p_bad: f64) {
        assert!(a.0 < self.node_count && b.0 < self.node_count);
        assert!(base_min > 0.0);
        assert!((0.0..=1.0).contains(&exposure) && (0.0..=1.0).contains(&p_bad));
        self.edges.push(RoadEdge {
            from: a,
            to: b,
            base_min,
            exposure,
            p_bad,
        });
        self.edges.push(RoadEdge {
            from: b,
            to: a,
            base_min,
            exposure,
            p_bad,
        });
    }

    /// Updates the forecast on all segments between `a` and `b`.
    pub fn set_forecast(&mut self, a: RoadNode, b: RoadNode, p_bad: f64) {
        for e in &mut self.edges {
            if (e.from == a && e.to == b) || (e.from == b && e.to == a) {
                e.p_bad = p_bad.clamp(0.0, 1.0);
            }
        }
    }

    /// Shortest path from `start` to `goal` under the cost model, or `None`
    /// when unreachable.
    pub fn plan(&self, start: RoadNode, goal: RoadNode, model: CostModel) -> Option<Route> {
        const SCALE: f64 = 1e6; // fixed-point keys for the binary heap
        let mut dist = vec![f64::INFINITY; self.node_count];
        let mut prev: Vec<Option<usize>> = vec![None; self.node_count];
        let mut heap = BinaryHeap::new();
        dist[start.0] = 0.0;
        heap.push(Reverse((0u64, start.0)));
        while let Some(Reverse((d_key, u))) = heap.pop() {
            let d = d_key as f64 / SCALE;
            if d > dist[u] + 1e-12 {
                continue;
            }
            if u == goal.0 {
                break;
            }
            for e in self.edges.iter().filter(|e| e.from.0 == u) {
                let nd = dist[u] + model.edge_cost(e);
                if nd + 1e-12 < dist[e.to.0] {
                    dist[e.to.0] = nd;
                    prev[e.to.0] = Some(u);
                    heap.push(Reverse(((nd * SCALE) as u64, e.to.0)));
                }
            }
        }
        if dist[goal.0].is_infinite() {
            return None;
        }
        let mut nodes = vec![goal];
        let mut cur = goal.0;
        while let Some(p) = prev[cur] {
            nodes.push(RoadNode(p));
            cur = p;
        }
        nodes.reverse();
        Some(Route {
            nodes,
            cost: dist[goal.0],
        })
    }

    /// True travel time of a route if the weather realizes as `bad` on every
    /// segment (for evaluating a plan after the fact).
    pub fn realized_time(&self, route: &Route, bad_weather: bool, slowdown: f64) -> f64 {
        route
            .nodes
            .windows(2)
            .map(|w| {
                let e = self
                    .edges
                    .iter()
                    .find(|e| e.from == w[0] && e.to == w[1])
                    .expect("route uses existing edges");
                if bad_weather {
                    e.base_min * (1.0 + e.exposure * slowdown)
                } else {
                    e.base_min
                }
            })
            .sum()
    }
}

/// The paper's alpine scenario: start → goal via a short exposed mountain
/// pass (node 1) or a long sheltered valley detour (node 2).
pub fn alpine_scenario(p_bad_pass: f64) -> (RoadGraph, RoadNode, RoadNode) {
    let mut g = RoadGraph::new(4);
    let start = RoadNode(0);
    let pass = RoadNode(1);
    let valley = RoadNode(2);
    let goal = RoadNode(3);
    // Pass: 60 min total, heavily weather-exposed.
    g.add_road(start, pass, 30.0, 0.9, p_bad_pass);
    g.add_road(pass, goal, 30.0, 0.9, p_bad_pass);
    // Detour: 100 min total, sheltered.
    g.add_road(start, valley, 50.0, 0.1, 0.1);
    g.add_road(valley, goal, 50.0, 0.1, 0.1);
    (g, start, goal)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn risk() -> CostModel {
        CostModel::RiskAware {
            slowdown: 1.0,
            risk_weight: 1.0,
        }
    }

    #[test]
    fn naive_always_takes_the_pass() {
        for p in [0.0, 0.5, 1.0] {
            let (g, s, t) = alpine_scenario(p);
            let route = g.plan(s, t, CostModel::Naive).unwrap();
            assert!(route.nodes.contains(&RoadNode(1)), "p={p}");
            assert!((route.cost - 60.0).abs() < 1e-9);
        }
    }

    #[test]
    fn risk_aware_flips_to_detour_when_forecast_is_bad() {
        // Clear forecast: pass.
        let (g, s, t) = alpine_scenario(0.05);
        let route = g.plan(s, t, risk()).unwrap();
        assert!(route.nodes.contains(&RoadNode(1)));
        // Bad forecast: detour.
        let (g, s, t) = alpine_scenario(0.8);
        let route = g.plan(s, t, risk()).unwrap();
        assert!(route.nodes.contains(&RoadNode(2)), "{route:?}");
    }

    #[test]
    fn flip_threshold_is_where_expected_costs_cross() {
        // Pass cost: 60(1 + 0.9p·1) + 1·0.9p·60 = 60 + 108p.
        // Detour cost: 100(1+0.1·0.1) + 0.1·0.1·100 = 102.
        // Crossover at p = 42/108 ≈ 0.389.
        let below = alpine_scenario(0.35);
        let above = alpine_scenario(0.43);
        let r1 = below.0.plan(below.1, below.2, risk()).unwrap();
        let r2 = above.0.plan(above.1, above.2, risk()).unwrap();
        assert!(r1.nodes.contains(&RoadNode(1)), "still pass at 0.35");
        assert!(r2.nodes.contains(&RoadNode(2)), "detour at 0.43");
    }

    #[test]
    fn realized_time_rewards_risk_awareness_in_storms() {
        let (g, s, t) = alpine_scenario(0.8);
        let naive = g.plan(s, t, CostModel::Naive).unwrap();
        let smart = g.plan(s, t, risk()).unwrap();
        // Storm hits: naive (pass) route degrades badly.
        let naive_time = g.realized_time(&naive, true, 1.0);
        let smart_time = g.realized_time(&smart, true, 1.0);
        assert!(naive_time > 110.0, "{naive_time}");
        assert!(smart_time < naive_time, "{smart_time} vs {naive_time}");
    }

    #[test]
    fn unreachable_goal_yields_none() {
        let g = RoadGraph::new(2);
        assert!(g.plan(RoadNode(0), RoadNode(1), CostModel::Naive).is_none());
    }

    #[test]
    fn forecast_update_changes_plan() {
        let (mut g, s, t) = alpine_scenario(0.0);
        assert!(g.plan(s, t, risk()).unwrap().nodes.contains(&RoadNode(1)));
        g.set_forecast(s, RoadNode(1), 0.9);
        g.set_forecast(RoadNode(1), t, 0.9);
        assert!(g.plan(s, t, risk()).unwrap().nodes.contains(&RoadNode(2)));
    }
}
