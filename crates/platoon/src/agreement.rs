//! Byzantine-tolerant agreement on shared driving parameters.
//!
//! Sec. V: *"agreeing on a common velocity or a minimum distance between
//! vehicles in a platoon is an essential but non-trivial problem as the
//! communication to or the platform of another vehicle might not be fully
//! trustworthy or even compromised. … this can be addressed by agreement or
//! consensus protocols."*
//!
//! Two protocols are provided:
//!
//! * [`trimmed_mean_agreement`] — iterative approximate agreement: each
//!   round every member broadcasts its value and honest members adopt the
//!   `f`-trimmed mean of what they received. For `n > 3f` this converges to
//!   a value inside the honest range regardless of what the `f` faulty
//!   members send (Dolev et al. style approximate agreement).
//! * [`robust_min`] — a one-shot Byzantine-robust minimum for safety
//!   parameters (common speed must not exceed any honest member's safe
//!   speed): the `(f+1)`-th smallest reported value, which is at most the
//!   largest honest value and ignores up to `f` adversarial low-balls.

/// The Byzantine quorum precondition `n > 3f` does not hold: with `n`
/// participants the protocol cannot tolerate `f` simultaneous faults.
///
/// Returned (instead of a silently degenerate trimmed mean or a bare
/// `None`) by [`try_trimmed_mean_agreement`] and
/// [`crate::platoon::Platoon::negotiate_speed`] so callers can distinguish
/// "too few members" from any other negotiation outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InsufficientQuorum {
    /// Participants present.
    pub n: usize,
    /// Simultaneous faults the caller asked to tolerate.
    pub f: usize,
}

impl InsufficientQuorum {
    /// The smallest participant count satisfying `n > 3f`.
    pub fn required(&self) -> usize {
        3 * self.f + 1
    }
}

impl std::fmt::Display for InsufficientQuorum {
    fn fmt(&self, fmt: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            fmt,
            "insufficient quorum: n = {} participants cannot tolerate f = {} faults (need n >= {})",
            self.n,
            self.f,
            self.required()
        )
    }
}

impl std::error::Error for InsufficientQuorum {}

/// Behaviour of a platoon member in the agreement rounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Behavior {
    /// Follows the protocol.
    Honest,
    /// Always reports the same (wrong) value.
    ConstantLie(f64),
    /// Alternates between two extreme values each round.
    Oscillate {
        /// Low extreme.
        low: f64,
        /// High extreme.
        high: f64,
    },
    /// Reports its honest value plus a selfish offset (e.g. wants the
    /// platoon faster than safe).
    SelfishOffset(f64),
}

/// Result of an agreement run.
#[derive(Debug, Clone)]
pub struct AgreementResult {
    /// Final values held by the honest members, in member order.
    pub honest_values: Vec<f64>,
    /// Rounds executed.
    pub rounds: usize,
    /// Whether the honest members reached ε-agreement.
    pub converged: bool,
}

impl AgreementResult {
    /// Spread among honest members after the run.
    pub fn spread(&self) -> f64 {
        let lo = self
            .honest_values
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let hi = self
            .honest_values
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        if self.honest_values.is_empty() {
            0.0
        } else {
            hi - lo
        }
    }

    /// Mean of the honest values (the agreed parameter when converged).
    pub fn agreed_value(&self) -> f64 {
        if self.honest_values.is_empty() {
            return 0.0;
        }
        self.honest_values.iter().sum::<f64>() / self.honest_values.len() as f64
    }
}

fn trimmed_mean(values: &mut [f64], f: usize) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in agreement"));
    let kept = &values[f.min(values.len() / 2)..values.len().saturating_sub(f).max(f + 1)];
    if kept.is_empty() {
        return values[values.len() / 2];
    }
    kept.iter().sum::<f64>() / kept.len() as f64
}

/// Runs iterative trimmed-mean approximate agreement.
///
/// `initial[i]` is member *i*'s starting value; `behaviors[i]` its protocol
/// behaviour; `f` the trim count (the assumed maximum number of faulty
/// members); `epsilon` the target honest spread; `max_rounds` a hard bound.
///
/// # Panics
/// Panics if the slices differ in length or are empty, or if the quorum
/// precondition `n > 3f` does not hold — use
/// [`try_trimmed_mean_agreement`] to handle the latter as a typed error.
pub fn trimmed_mean_agreement(
    initial: &[f64],
    behaviors: &[Behavior],
    f: usize,
    epsilon: f64,
    max_rounds: usize,
) -> AgreementResult {
    try_trimmed_mean_agreement(initial, behaviors, f, epsilon, max_rounds)
        .expect("quorum precondition n > 3f violated")
}

/// [`trimmed_mean_agreement`] with the quorum precondition checked
/// explicitly: `n <= 3f` returns [`InsufficientQuorum`] instead of running
/// the protocol outside its guarantee (where the trimmed mean degenerates
/// and convergence/validity no longer hold).
///
/// # Panics
/// Panics if the slices differ in length or are empty.
pub fn try_trimmed_mean_agreement(
    initial: &[f64],
    behaviors: &[Behavior],
    f: usize,
    epsilon: f64,
    max_rounds: usize,
) -> Result<AgreementResult, InsufficientQuorum> {
    assert_eq!(initial.len(), behaviors.len());
    assert!(!initial.is_empty());
    let n = initial.len();
    if n <= 3 * f {
        return Err(InsufficientQuorum { n, f });
    }
    let mut values: Vec<f64> = initial.to_vec();
    let honest_idx: Vec<usize> = (0..n)
        .filter(|&i| behaviors[i] == Behavior::Honest)
        .collect();
    let mut rounds = 0;
    let spread_of = |vals: &[f64]| -> f64 {
        let hv: Vec<f64> = honest_idx.iter().map(|&i| vals[i]).collect();
        let lo = hv.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = hv.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        hi - lo
    };
    while rounds < max_rounds && spread_of(&values) > epsilon {
        rounds += 1;
        // What each member broadcasts this round.
        let broadcast: Vec<f64> = (0..n)
            .map(|i| match behaviors[i] {
                Behavior::Honest => values[i],
                Behavior::ConstantLie(v) => v,
                Behavior::Oscillate { low, high } => {
                    if rounds % 2 == 0 {
                        low
                    } else {
                        high
                    }
                }
                Behavior::SelfishOffset(d) => values[i] + d,
            })
            .collect();
        // Honest members update to the trimmed mean of all broadcasts.
        let mut next = values.clone();
        for &i in &honest_idx {
            let mut received = broadcast.clone();
            next[i] = trimmed_mean(&mut received, f);
        }
        values = next;
    }
    Ok(AgreementResult {
        honest_values: honest_idx.iter().map(|&i| values[i]).collect(),
        rounds,
        converged: spread_of(&values) <= epsilon,
    })
}

/// Byzantine-robust minimum: the `(f+1)`-th smallest reported value.
///
/// With at most `f` faulty reporters, at least one of the `f+1` smallest
/// values is honest, so the result never exceeds the largest honest value;
/// adversarial low-balls below it are discarded.
///
/// # Panics
/// Panics if `reports.len() <= f`.
pub fn robust_min(reports: &[f64], f: usize) -> f64 {
    assert!(reports.len() > f, "need more reports than faults");
    let mut sorted = reports.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    sorted[f]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn honest(n: usize) -> Vec<Behavior> {
        vec![Behavior::Honest; n]
    }

    #[test]
    fn all_honest_converges_fast() {
        let initial = [20.0, 22.0, 24.0, 26.0];
        let r = trimmed_mean_agreement(&initial, &honest(4), 1, 0.01, 100);
        assert!(r.converged);
        assert!(r.spread() <= 0.01);
        // Validity: result within the initial range.
        let v = r.agreed_value();
        assert!((20.0..=26.0).contains(&v), "{v}");
        assert!(r.rounds < 50);
    }

    #[test]
    fn tolerates_f_liars_when_n_over_3f() {
        // n = 7, f = 2 liars pushing extreme values.
        let initial = [20.0, 21.0, 22.0, 23.0, 24.0, 99.0, -50.0];
        let mut behaviors = honest(7);
        behaviors[5] = Behavior::ConstantLie(99.0);
        behaviors[6] = Behavior::ConstantLie(-50.0);
        let r = trimmed_mean_agreement(&initial, &behaviors, 2, 0.01, 200);
        assert!(r.converged, "spread {}", r.spread());
        let v = r.agreed_value();
        assert!((20.0..=24.0).contains(&v), "validity violated: {v}");
    }

    #[test]
    fn oscillating_adversary_still_converges() {
        let initial = [20.0, 21.0, 22.0, 23.0, 0.0];
        let mut behaviors = honest(5);
        behaviors[4] = Behavior::Oscillate {
            low: -100.0,
            high: 100.0,
        };
        let r = trimmed_mean_agreement(&initial, &behaviors, 1, 0.01, 300);
        assert!(r.converged);
        let v = r.agreed_value();
        assert!((20.0..=23.0).contains(&v), "{v}");
    }

    #[test]
    fn too_many_liars_break_validity_or_convergence() {
        // n = 4, f assumed 1, but actually 2 coordinated liars: the
        // guarantee n > 3f no longer holds and the agreed value is dragged
        // outside the honest range.
        let initial = [20.0, 21.0, 80.0, 80.0];
        let mut behaviors = honest(4);
        behaviors[2] = Behavior::ConstantLie(80.0);
        behaviors[3] = Behavior::ConstantLie(80.0);
        let r = trimmed_mean_agreement(&initial, &behaviors, 1, 0.01, 300);
        let v = r.agreed_value();
        assert!(
            !r.converged || v > 21.0,
            "expected corruption beyond honest range, got {v}"
        );
    }

    #[test]
    fn selfish_offset_has_bounded_influence() {
        let initial = [20.0, 20.0, 20.0, 20.0, 20.0, 20.0, 20.0];
        let mut behaviors = honest(7);
        behaviors[0] = Behavior::SelfishOffset(10.0);
        let r = trimmed_mean_agreement(&initial, &behaviors, 2, 0.01, 200);
        assert!(r.converged);
        // All honest started at 20; the selfish member's pushes are trimmed.
        assert!(
            (r.agreed_value() - 20.0).abs() < 0.5,
            "{}",
            r.agreed_value()
        );
    }

    #[test]
    fn robust_min_ignores_lowballs() {
        // Honest safe speeds 15..25; attacker reports 1.0 to stall the
        // platoon (denial of service via fake incapability).
        let reports = [15.0, 18.0, 22.0, 25.0, 1.0];
        let v = robust_min(&reports, 1);
        assert_eq!(v, 15.0);
        // Two lowballs with f=1 do poison it — the bound is tight.
        let reports = [15.0, 18.0, 22.0, 1.0, 1.0];
        assert_eq!(robust_min(&reports, 1), 1.0);
        assert_eq!(robust_min(&reports, 2), 15.0);
    }

    #[test]
    fn robust_min_never_exceeds_largest_honest_value() {
        // Attacker high-balls instead: the (f+1)-th smallest is still an
        // honest (or lower) value.
        let reports = [15.0, 18.0, 22.0, 99.0];
        assert!(robust_min(&reports, 1) <= 22.0);
    }

    #[test]
    #[should_panic(expected = "more reports")]
    fn robust_min_needs_quorum() {
        let _ = robust_min(&[1.0], 1);
    }

    #[test]
    fn quorum_boundary_is_exact() {
        // n = 3f is rejected with a typed error; n = 3f + 1 runs.
        for f in 1usize..4 {
            let at_bound = vec![20.0; 3 * f];
            let err = try_trimmed_mean_agreement(&at_bound, &honest(3 * f), f, 0.01, 100)
                .expect_err("n = 3f must be rejected");
            assert_eq!(err, InsufficientQuorum { n: 3 * f, f });
            assert_eq!(err.required(), 3 * f + 1);
            let above = vec![20.0; 3 * f + 1];
            let r = try_trimmed_mean_agreement(&above, &honest(3 * f + 1), f, 0.01, 100)
                .expect("n = 3f + 1 satisfies the quorum");
            assert!(r.converged);
        }
        // f = 0 needs only one participant.
        assert!(try_trimmed_mean_agreement(&[5.0], &honest(1), 0, 0.01, 10).is_ok());
    }

    #[test]
    fn insufficient_quorum_formats_requirement() {
        let err = InsufficientQuorum { n: 3, f: 1 };
        let msg = err.to_string();
        assert!(
            msg.contains("n = 3") && msg.contains("f = 1") && msg.contains("4"),
            "{msg}"
        );
    }
}
