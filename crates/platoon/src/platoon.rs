//! Platoon membership, trust management and parameter negotiation.
//!
//! Combines the agreement protocols with a simple evidence-based trust
//! model: members whose broadcasts repeatedly deviate from the agreed value
//! lose trust and are ejected — the self-protection against "malicious
//! neighbors" the paper calls for. The negotiated cruise speed is the
//! Byzantine-robust minimum of the members' *safe speeds* (each derived
//! from that vehicle's ability level), so a fog-blinded vehicle can keep
//! driving by joining a platoon whose agreed speed respects everyone's
//! capabilities.

use std::collections::BTreeMap;

use crate::agreement::{
    robust_min, try_trimmed_mean_agreement, AgreementResult, Behavior, InsufficientQuorum,
};

/// Identifier of a platoon member.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MemberId(pub usize);

/// One platoon member.
#[derive(Debug, Clone)]
pub struct Member {
    /// Identifier.
    pub id: MemberId,
    /// The speed this vehicle considers safe given its own abilities (m/s).
    pub safe_speed_mps: f64,
    /// Protocol behaviour (faulty members lie).
    pub behavior: Behavior,
    /// Current trust score in `[0, 1]`.
    pub trust: f64,
}

/// Outcome of one negotiation round.
#[derive(Debug, Clone)]
pub struct Negotiation {
    /// The agreed common cruise speed (m/s).
    pub speed_mps: f64,
    /// The agreement run underlying it.
    pub agreement: AgreementResult,
    /// Members ejected for losing trust during this negotiation.
    pub ejected: Vec<MemberId>,
}

/// A platoon with trust management.
#[derive(Debug, Clone)]
pub struct Platoon {
    members: Vec<Member>,
    /// Assumed maximum number of simultaneously faulty members.
    max_faults: usize,
    /// Trust lost per observed deviation; gained back per consistent round.
    trust_step: f64,
    /// Ejection threshold.
    trust_floor: f64,
}

impl Platoon {
    /// Creates a platoon tolerating up to `max_faults` faulty members.
    pub fn new(max_faults: usize) -> Self {
        Platoon {
            members: Vec::new(),
            max_faults,
            trust_step: 0.25,
            trust_floor: 0.5,
        }
    }

    /// Adds a member with full trust; returns its id.
    pub fn join(&mut self, safe_speed_mps: f64, behavior: Behavior) -> MemberId {
        let id = MemberId(self.members.len());
        self.members.push(Member {
            id,
            safe_speed_mps,
            behavior,
            trust: 1.0,
        });
        id
    }

    /// Active (non-ejected) members.
    pub fn active_members(&self) -> Vec<&Member> {
        self.members.iter().filter(|m| m.trust > 0.0).collect()
    }

    /// Number of active members.
    pub fn len(&self) -> usize {
        self.active_members().len()
    }

    /// Whether the platoon has no active members.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Trust score of a member.
    ///
    /// # Panics
    /// Panics on an invalid id.
    pub fn trust(&self, id: MemberId) -> f64 {
        self.members[id.0].trust
    }

    /// Updates a member's reported safe speed (abilities change over time;
    /// in co-simulation the value is the claim most recently received over
    /// the V2V channel).
    ///
    /// # Panics
    /// Panics on an invalid id.
    pub fn set_safe_speed(&mut self, id: MemberId, safe_speed_mps: f64) {
        self.members[id.0].safe_speed_mps = safe_speed_mps;
    }

    /// Negotiates the common cruise speed:
    ///
    /// 1. every active member reports its safe speed (liars lie);
    /// 2. the speed is the Byzantine-robust minimum of the reports;
    /// 3. agreement on the value is confirmed with trimmed-mean rounds;
    /// 4. members whose report deviates grossly from the agreed value lose
    ///    trust; below the floor they are ejected.
    ///
    /// Returns [`InsufficientQuorum`] when fewer than `3·max_faults + 1`
    /// members are active (the protocol precondition does not hold), so
    /// callers can distinguish "platoon too small" from any negotiated
    /// outcome instead of reading a silent `None`.
    pub fn negotiate_speed(&mut self) -> Result<Negotiation, InsufficientQuorum> {
        let active: Vec<usize> = self
            .members
            .iter()
            .enumerate()
            .filter(|(_, m)| m.trust > 0.0)
            .map(|(i, _)| i)
            .collect();
        if active.len() < 3 * self.max_faults + 1 {
            return Err(InsufficientQuorum {
                n: active.len(),
                f: self.max_faults,
            });
        }
        let reports: Vec<f64> = active
            .iter()
            .map(|&i| match self.members[i].behavior {
                Behavior::Honest => self.members[i].safe_speed_mps,
                Behavior::ConstantLie(v) => v,
                Behavior::Oscillate { high, .. } => high,
                Behavior::SelfishOffset(d) => self.members[i].safe_speed_mps + d,
            })
            .collect();
        let behaviors: Vec<Behavior> = active.iter().map(|&i| self.members[i].behavior).collect();
        let speed = robust_min(&reports, self.max_faults);
        let agreement =
            try_trimmed_mean_agreement(&reports, &behaviors, self.max_faults, 0.01, 200)?;
        // Trust update: deviation of each member's report from the robust
        // minimum's neighborhood, using the honest spread as tolerance.
        let tolerance = (agreement.spread() + 1.0).max(5.0);
        let mut ejected = Vec::new();
        for (k, &i) in active.iter().enumerate() {
            let deviation = (reports[k] - agreement.agreed_value()).abs();
            let member = &mut self.members[i];
            if deviation > tolerance {
                member.trust -= self.trust_step;
                if member.trust < self.trust_floor {
                    member.trust = 0.0;
                    ejected.push(member.id);
                }
            } else {
                member.trust = (member.trust + self.trust_step / 2.0).min(1.0);
            }
        }
        Ok(Negotiation {
            speed_mps: speed,
            agreement,
            ejected,
        })
    }

    /// Current trust scores by member id, in id order — a `BTreeMap` so
    /// trust reports and table rows iterate deterministically.
    pub fn trust_table(&self) -> BTreeMap<MemberId, f64> {
        self.members.iter().map(|m| (m.id, m.trust)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_platoon_agrees_on_slowest_safe_speed() {
        let mut p = Platoon::new(1);
        for v in [25.0, 22.0, 18.0, 24.0] {
            p.join(v, Behavior::Honest);
        }
        let n = p.negotiate_speed().expect("quorum");
        // Robust min with f=1 over sorted [18,22,24,25] = 22: one report is
        // discarded as potentially faulty, so the fog-blind 18 m/s member is
        // NOT fully trusted... the platoon must include enough members.
        assert_eq!(n.speed_mps, 22.0);
        assert!(n.agreement.converged);
        assert!(n.ejected.is_empty());
    }

    #[test]
    fn fog_blind_member_protected_with_larger_quorum() {
        // With zero assumed faults the true minimum rules.
        let mut p = Platoon::new(0);
        for v in [25.0, 22.0, 12.0] {
            p.join(v, Behavior::Honest);
        }
        let n = p.negotiate_speed().unwrap();
        assert_eq!(n.speed_mps, 12.0);
    }

    #[test]
    fn lowball_attacker_cannot_stall_platoon() {
        let mut p = Platoon::new(1);
        for v in [25.0, 23.0, 22.0, 24.0, 21.0, 23.5] {
            p.join(v, Behavior::Honest);
        }
        p.join(21.0, Behavior::ConstantLie(2.0)); // wants everyone at 2 m/s
        let n = p.negotiate_speed().unwrap();
        assert!(n.speed_mps >= 21.0, "stalled at {}", n.speed_mps);
    }

    #[test]
    fn persistent_liar_is_ejected() {
        let mut p = Platoon::new(1);
        for v in [25.0, 23.0, 22.0, 24.0, 21.0, 23.5] {
            p.join(v, Behavior::Honest);
        }
        let liar = p.join(22.0, Behavior::ConstantLie(90.0));
        let mut ejected_at = None;
        for round in 0..5 {
            let n = p.negotiate_speed().unwrap();
            if n.ejected.contains(&liar) {
                ejected_at = Some(round);
                break;
            }
        }
        assert!(ejected_at.is_some(), "liar never ejected");
        assert_eq!(p.trust(liar), 0.0);
        assert_eq!(p.len(), 6);
    }

    #[test]
    fn insufficient_quorum_refuses_negotiation() {
        let mut p = Platoon::new(2);
        for v in [25.0, 22.0, 20.0] {
            p.join(v, Behavior::Honest);
        }
        assert_eq!(
            p.negotiate_speed().unwrap_err(),
            InsufficientQuorum { n: 3, f: 2 },
            "3 < 3*2+1"
        );
    }

    #[test]
    fn quorum_boundary_n_3f_plus_1_negotiates() {
        // Exactly 3f + 1 active members is the smallest negotiable platoon.
        let mut p = Platoon::new(1);
        for v in [25.0, 22.0, 20.0, 23.0] {
            p.join(v, Behavior::Honest);
        }
        assert!(p.negotiate_speed().is_ok(), "4 = 3*1+1 satisfies quorum");
        // Dropping to 3f active members (one ejection) flips to the error.
        let mut q = Platoon::new(1);
        for v in [25.0, 22.0, 20.0] {
            q.join(v, Behavior::Honest);
        }
        let err = q.negotiate_speed().unwrap_err();
        assert_eq!(err, InsufficientQuorum { n: 3, f: 1 });
        assert_eq!(err.required(), 4);
    }

    #[test]
    fn trust_table_iterates_in_member_id_order() {
        let mut p = Platoon::new(1);
        for v in [25.0, 23.0, 22.0, 24.0, 21.0] {
            p.join(v, Behavior::Honest);
        }
        let liar = p.join(22.0, Behavior::ConstantLie(90.0));
        for _ in 0..4 {
            let _ = p.negotiate_speed();
        }
        let ids: Vec<MemberId> = p.trust_table().into_keys().collect();
        assert_eq!(ids, (0..6).map(MemberId).collect::<Vec<_>>());
        assert_eq!(p.trust_table()[&liar], 0.0);
    }

    #[test]
    fn updated_safe_speed_moves_the_agreement() {
        let mut p = Platoon::new(1);
        let ids: Vec<MemberId> = [25.0, 23.0, 22.0, 24.0]
            .iter()
            .map(|&v| p.join(v, Behavior::Honest))
            .collect();
        let before = p.negotiate_speed().unwrap().speed_mps;
        // The slowest-but-one member degrades (fog): the robust minimum
        // follows the refreshed claims.
        p.set_safe_speed(ids[2], 15.0);
        p.set_safe_speed(ids[1], 16.0);
        let after = p.negotiate_speed().unwrap().speed_mps;
        assert!(after < before, "{after} vs {before}");
        assert_eq!(after, 16.0);
    }

    #[test]
    fn honest_members_keep_trust() {
        let mut p = Platoon::new(1);
        let ids: Vec<MemberId> = [25.0, 23.0, 22.0, 24.0]
            .iter()
            .map(|&v| p.join(v, Behavior::Honest))
            .collect();
        for _ in 0..3 {
            p.negotiate_speed().unwrap();
        }
        for id in ids {
            assert_eq!(p.trust(id), 1.0);
        }
    }
}
