//! # saav-platoon — cooperation under distrust
//!
//! The cooperative self-awareness substrate of Sec. V of Schlatow et al.
//! (DATE 2017): vehicles that must *"cooperate to share information or even
//! to agree on collective behavior"* while any neighbour's communication or
//! platform *"might not be fully trustworthy or even compromised"*.
//!
//! * [`agreement`] — Byzantine-tolerant protocols: iterative trimmed-mean
//!   approximate agreement (`n > 3f`) and a robust minimum for safety
//!   parameters.
//! * [`platoon`] — membership, negotiation of the common cruise speed from
//!   per-vehicle safe speeds, and evidence-based trust with ejection.
//! * [`routing`] — risk-aware route planning under weather forecasts,
//!   including the paper's alpine-pass-vs-detour scenario.
//!
//! ```
//! use saav_platoon::agreement::{robust_min};
//!
//! // Four vehicles report safe speeds; one lies absurdly low.
//! let agreed = robust_min(&[22.0, 25.0, 23.0, 1.0], 1);
//! assert_eq!(agreed, 22.0);
//! ```

#![warn(missing_docs)]

pub mod agreement;
pub mod platoon;
pub mod routing;

pub use agreement::{
    robust_min, trimmed_mean_agreement, try_trimmed_mean_agreement, AgreementResult, Behavior,
    InsufficientQuorum,
};
pub use platoon::{Member, MemberId, Negotiation, Platoon};
pub use routing::{alpine_scenario, CostModel, RoadGraph, RoadNode, Route};
