//! # saav-timing — compositional performance analysis
//!
//! The formal timing methods of the CCC model domain (Sec. II-A of Schlatow
//! et al., DATE 2017): the Multi-Change Controller uses worst-case response
//! time (WCRT) analysis as an *acceptance test* — an update is only applied
//! if the new configuration provably meets all real-time constraints.
//!
//! * [`event_model`] — (P, J, d_min) event models with `η⁺`/`δ⁻`.
//! * [`task`] — tasks/frame streams, priorities, analysis results.
//! * [`cpu`] — busy-window WCRT for static-priority preemptive CPUs.
//! * [`can_rt`] — non-preemptive CAN WCRT with blocking (Davis et al. 2007).
//! * [`system`] — multi-resource fixpoint with output-jitter propagation
//!   along task chains and end-to-end path latencies.
//!
//! ```
//! use saav_sim::time::Duration;
//! use saav_timing::cpu::CpuAnalysis;
//! use saav_timing::event_model::EventModel;
//! use saav_timing::task::{Priority, Task};
//!
//! let mut cpu = CpuAnalysis::new();
//! let p = Duration::from_millis(10);
//! cpu.add_task(Task::new("ctl", Duration::from_millis(2), Priority(0),
//!                        EventModel::periodic(p), p));
//! let result = cpu.analyze().expect("schedulable");
//! assert_eq!(result.response("ctl").unwrap().wcrt, Duration::from_millis(2));
//! ```

#![warn(missing_docs)]

pub mod can_rt;
pub mod cpu;
pub mod event_model;
pub mod system;
pub mod task;

pub use can_rt::CanAnalysis;
pub use cpu::CpuAnalysis;
pub use event_model::EventModel;
pub use system::{Activation, ResourceId, SystemAnalysis, SystemModel, TaskId};
pub use task::{AnalysisError, Priority, ResourceAnalysis, Task, TaskResponse};
