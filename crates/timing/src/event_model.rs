//! PJD event models (period, jitter, minimum distance).
//!
//! The standard event-model abstraction of compositional performance
//! analysis (CPA), which the CCC model domain uses for its timing viewpoint.
//! An event model bounds how many activations can arrive in any half-open
//! time window (`η⁺`, [`EventModel::eta_plus`]) and how close together the
//! first `n` events can be (`δ⁻`, [`EventModel::delta_min`]).

use saav_sim::time::Duration;

/// A (P, J, d_min) event model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventModel {
    period: Duration,
    jitter: Duration,
    d_min: Duration,
}

impl EventModel {
    /// A strictly periodic event stream.
    ///
    /// # Panics
    /// Panics if `period` is zero.
    pub fn periodic(period: Duration) -> Self {
        EventModel::with_jitter(period, Duration::ZERO)
    }

    /// A periodic stream with release jitter.
    ///
    /// # Panics
    /// Panics if `period` is zero.
    pub fn with_jitter(period: Duration, jitter: Duration) -> Self {
        EventModel::new(period, jitter, Duration::from_nanos(1))
    }

    /// A full (P, J, d_min) model. `d_min` lower-bounds consecutive event
    /// distance even when jitter would otherwise allow bursts.
    ///
    /// # Panics
    /// Panics if `period` or `d_min` is zero.
    pub fn new(period: Duration, jitter: Duration, d_min: Duration) -> Self {
        assert!(!period.is_zero(), "period must be positive");
        assert!(!d_min.is_zero(), "d_min must be positive");
        EventModel {
            period,
            jitter,
            d_min,
        }
    }

    /// The period.
    pub fn period(&self) -> Duration {
        self.period
    }

    /// The jitter.
    pub fn jitter(&self) -> Duration {
        self.jitter
    }

    /// The minimum event distance.
    pub fn d_min(&self) -> Duration {
        self.d_min
    }

    /// Returns this model with additional jitter (output event model of a
    /// task with response-time variation — the jitter-propagation rule of
    /// CPA).
    pub fn with_added_jitter(&self, extra: Duration) -> EventModel {
        EventModel {
            period: self.period,
            jitter: self.jitter + extra,
            d_min: self.d_min,
        }
    }

    /// Maximum number of events in any half-open window of length `dt`
    /// (`η⁺`).
    pub fn eta_plus(&self, dt: Duration) -> u64 {
        let dt_ns = dt.as_nanos();
        if dt_ns == 0 {
            return 0;
        }
        let p = self.period.as_nanos();
        let j = self.jitter.as_nanos();
        let d = self.d_min.as_nanos();
        // Largest n with (n-1)·P − J < dt  ⟺  n ≤ (dt + J − 1) div P + 1.
        let n_periodic = (dt_ns + j - 1) / p + 1;
        // Largest n with (n-1)·d_min < dt.
        let n_dmin = (dt_ns - 1) / d + 1;
        n_periodic.min(n_dmin)
    }

    /// Minimum distance between the first and the `n`-th event (`δ⁻`).
    pub fn delta_min(&self, n: u64) -> Duration {
        if n <= 1 {
            return Duration::ZERO;
        }
        let spread = self.period * (n - 1);
        let periodic = spread.saturating_sub(self.jitter);
        let dmin = self.d_min * (n - 1);
        periodic.max(dmin)
    }

    /// Long-run activation rate in events per second.
    pub fn rate_hz(&self) -> f64 {
        1.0 / self.period.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn periodic_eta_plus() {
        let m = EventModel::periodic(ms(10));
        assert_eq!(m.eta_plus(Duration::ZERO), 0);
        assert_eq!(m.eta_plus(ms(1)), 1);
        assert_eq!(m.eta_plus(ms(10)), 1);
        assert_eq!(m.eta_plus(ms(10) + Duration::from_nanos(1)), 2);
        assert_eq!(m.eta_plus(ms(100)), 10);
        assert_eq!(m.eta_plus(ms(100) + Duration::from_nanos(1)), 11);
    }

    #[test]
    fn jitter_admits_bursts() {
        let m = EventModel::with_jitter(ms(10), ms(5));
        // With J=5ms, two events can fall within any window > 5ms.
        assert_eq!(m.eta_plus(ms(10)), 2);
        assert_eq!(m.eta_plus(ms(5)), 1);
        assert_eq!(m.eta_plus(ms(6)), 2);
    }

    #[test]
    fn d_min_caps_burst_density() {
        // Huge jitter but 2ms minimum distance.
        let m = EventModel::new(ms(10), ms(100), ms(2));
        assert_eq!(m.eta_plus(ms(2)), 1);
        assert_eq!(m.eta_plus(ms(4)), 2);
        assert_eq!(m.eta_plus(ms(10)), 5);
    }

    #[test]
    fn delta_min_is_pseudo_inverse_of_eta_plus() {
        let models = [
            EventModel::periodic(ms(7)),
            EventModel::with_jitter(ms(10), ms(3)),
            EventModel::new(ms(10), ms(25), ms(1)),
        ];
        for m in models {
            for n in 2..20u64 {
                let d = m.delta_min(n);
                // n events fit in any window slightly larger than δ⁻(n).
                assert!(m.eta_plus(d + Duration::from_nanos(1)) >= n, "{m:?} n={n}");
            }
        }
    }

    #[test]
    fn delta_min_values() {
        let m = EventModel::with_jitter(ms(10), ms(4));
        assert_eq!(m.delta_min(1), Duration::ZERO);
        assert_eq!(m.delta_min(2), ms(6));
        assert_eq!(m.delta_min(3), ms(16));
        // Jitter larger than the spread saturates at d_min spacing.
        let b = EventModel::new(ms(10), ms(50), ms(1));
        assert_eq!(b.delta_min(3), ms(2));
    }

    #[test]
    fn jitter_propagation_adds() {
        let m = EventModel::with_jitter(ms(10), ms(1));
        let out = m.with_added_jitter(ms(2));
        assert_eq!(out.jitter(), ms(3));
        assert_eq!(out.period(), ms(10));
    }

    #[test]
    fn rate() {
        assert!((EventModel::periodic(ms(10)).rate_hz() - 100.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "period")]
    fn zero_period_rejected() {
        let _ = EventModel::periodic(Duration::ZERO);
    }
}
