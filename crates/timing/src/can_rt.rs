//! WCRT analysis for CAN (non-preemptive static priority with blocking).
//!
//! Follows the corrected analysis of Davis, Burns, Bril & Lukkien
//! (*Controller Area Network (CAN) schedulability analysis: refuted,
//! revisited and revised*, RTS 2007), generalized to PJD event models:
//!
//! ```text
//! B_i      = max_{k ∈ lp(i)} C_k                       (blocking)
//! w_i(q)   = B_i + q·C_i + Σ_{j ∈ hp(i)} η_j⁺(w_i(q) + τ_bit)·C_j
//! R_i(q)   = w_i(q) + C_i − δ_i⁻(q+1)                  (activation-relative)
//! R_i      = max_{q = 0..Q-1} R_i(q)
//! ```
//!
//! where `τ_bit` is one bit time (a frame that starts even one bit early
//! cannot be preempted) and `Q` is the number of instances in the level-*i*
//! busy period.

use saav_sim::time::Duration;

use crate::task::{AnalysisError, ResourceAnalysis, Task, TaskResponse};

const MAX_ITERATIONS: usize = 10_000;

/// WCRT analysis of one CAN bus. [`Task`]s model frame streams: `wcet` is
/// the worst-case frame transmission time, `priority` the CAN identifier
/// order (lower = wins arbitration).
#[derive(Debug, Clone)]
pub struct CanAnalysis {
    frames: Vec<Task>,
    bit_time: Duration,
}

impl CanAnalysis {
    /// Creates an analysis for a bus with the given bit time.
    ///
    /// # Panics
    /// Panics if `bit_time` is zero.
    pub fn new(bit_time: Duration) -> Self {
        assert!(!bit_time.is_zero(), "bit time must be positive");
        CanAnalysis {
            frames: Vec::new(),
            bit_time,
        }
    }

    /// Convenience constructor from a bitrate.
    ///
    /// # Panics
    /// Panics if `bitrate_bps` is zero.
    pub fn with_bitrate(bitrate_bps: u32) -> Self {
        assert!(bitrate_bps > 0);
        CanAnalysis::new(Duration::from_nanos(1_000_000_000 / bitrate_bps as u64))
    }

    /// Adds a frame stream.
    pub fn add_frame(&mut self, frame: Task) -> &mut Self {
        self.frames.push(frame);
        self
    }

    /// The configured frame streams.
    pub fn frames(&self) -> &[Task] {
        &self.frames
    }

    /// Total bus utilization.
    pub fn utilization(&self) -> f64 {
        self.frames.iter().map(Task::utilization).sum()
    }

    /// Runs the analysis for all frame streams.
    ///
    /// # Errors
    /// [`AnalysisError::Overload`] or [`AnalysisError::Diverged`].
    pub fn analyze(&self) -> Result<ResourceAnalysis, AnalysisError> {
        let u = self.utilization();
        if u >= 1.0 {
            return Err(AnalysisError::Overload {
                utilization_pct: (u * 100.0) as u32,
            });
        }
        let mut responses = Vec::with_capacity(self.frames.len());
        for f in &self.frames {
            responses.push(TaskResponse {
                name: f.name.clone(),
                wcrt: self.wcrt_of(f)?,
                deadline: f.deadline,
            });
        }
        Ok(ResourceAnalysis { responses })
    }

    /// WCRT bound for one frame stream.
    ///
    /// # Errors
    /// [`AnalysisError::Diverged`] when the fixpoint fails to converge.
    pub fn wcrt_of(&self, frame: &Task) -> Result<Duration, AnalysisError> {
        let hp: Vec<&Task> = self
            .frames
            .iter()
            .filter(|t| t.priority < frame.priority)
            .collect();
        let blocking = self
            .frames
            .iter()
            .filter(|t| t.priority > frame.priority)
            .map(|t| t.wcet)
            .max()
            .unwrap_or(Duration::ZERO);

        // Level-i busy period.
        let mut busy = blocking + frame.wcet;
        for _ in 0..MAX_ITERATIONS {
            let mut total = blocking + frame.wcet * frame.events.eta_plus(busy).max(1);
            for j in &hp {
                total += j.wcet * j.events.eta_plus(busy);
            }
            if total == busy {
                break;
            }
            busy = total;
        }
        let instances = frame.events.eta_plus(busy).max(1);

        let mut worst = Duration::ZERO;
        for q in 0..instances {
            let mut w = blocking + frame.wcet * q;
            let mut converged = false;
            for _ in 0..MAX_ITERATIONS {
                let mut next = blocking + frame.wcet * q;
                for j in &hp {
                    next += j.wcet * j.events.eta_plus(w + self.bit_time);
                }
                if next == w {
                    converged = true;
                    break;
                }
                w = next;
            }
            if !converged {
                return Err(AnalysisError::Diverged {
                    task: frame.name.clone(),
                });
            }
            // Activation-relative response time (see `cpu` module for the
            // jitter-accounting convention shared by all analyses).
            let r = (w + frame.wcet).saturating_sub(frame.events.delta_min(q + 1));
            worst = worst.max(r);
        }
        Ok(worst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event_model::EventModel;
    use crate::task::Priority;

    fn us(v: u64) -> Duration {
        Duration::from_micros(v)
    }

    /// A frame stream: 135-bit worst case at 500 kbit/s = 270 µs.
    fn stream(name: &str, c_us: u64, period_us: u64, prio: u32) -> Task {
        Task::new(
            name,
            us(c_us),
            Priority(prio),
            EventModel::periodic(us(period_us)),
            us(period_us),
        )
    }

    fn bus() -> CanAnalysis {
        CanAnalysis::with_bitrate(500_000)
    }

    #[test]
    fn highest_priority_frame_still_suffers_blocking() {
        let mut b = bus();
        b.add_frame(stream("hi", 270, 10_000, 0));
        b.add_frame(stream("lo", 270, 10_000, 9));
        let res = b.analyze().unwrap();
        // hi: blocking 270 (lo already started) + own 270 = 540.
        assert_eq!(res.response("hi").unwrap().wcrt, us(540));
    }

    #[test]
    fn lowest_priority_frame_has_no_blocking() {
        let mut b = bus();
        b.add_frame(stream("hi", 270, 2_000, 0));
        b.add_frame(stream("lo", 270, 10_000, 9));
        let res = b.analyze().unwrap();
        // lo: q=0: w=0; interference eta_hi(0+2us)=1 -> w=270;
        // eta_hi(272us)=1 -> 270. R = 270+270 = 540.
        assert_eq!(res.response("lo").unwrap().wcrt, us(540));
    }

    #[test]
    fn interference_accumulates_with_priority() {
        let mut b = bus();
        for (i, p) in [(0u32, 1_000u64), (1, 2_000), (2, 4_000), (3, 8_000)] {
            b.add_frame(stream(&format!("f{i}"), 135, p, i));
        }
        let res = b.analyze().unwrap();
        let wcrts: Vec<Duration> = res.responses.iter().map(|r| r.wcrt).collect();
        for w in wcrts.windows(2) {
            assert!(w[0] <= w[1], "WCRT should grow with lower priority");
        }
        assert!(res.schedulable());
    }

    #[test]
    fn non_preemptive_push_through_counts_late_arrivals() {
        // A frame that starts transmitting cannot be preempted; interference
        // is evaluated at w + tau_bit. Verify the +tau_bit matters: with two
        // equal-period streams, lo's queueing delay collects exactly one hi
        // instance per period.
        let mut b = bus();
        b.add_frame(stream("hi", 200, 1_000, 0));
        b.add_frame(stream("lo", 200, 1_000, 5));
        let res = b.analyze().unwrap();
        // lo q=0: w=0 -> eta_hi(2us)=1 -> 200 -> eta_hi(202)=1 -> 200.
        // R = 200 + 200 = 400.
        assert_eq!(res.response("lo").unwrap().wcrt, us(400));
    }

    #[test]
    fn overload_detected() {
        let mut b = bus();
        b.add_frame(stream("a", 600, 1_000, 0));
        b.add_frame(stream("b", 600, 1_000, 1));
        assert!(matches!(b.analyze(), Err(AnalysisError::Overload { .. })));
    }

    #[test]
    fn busy_period_spans_multiple_instances_under_load() {
        let mut b = bus();
        // hp 50% + own 30% + a long low-priority blocker: the level-own busy
        // period spans five instances of `own`.
        let mut hp = stream("hp", 500, 1_000, 0);
        hp.deadline = us(2_000); // tolerate blocking by the long frame
        b.add_frame(hp);
        let mut own = stream("own", 300, 1_000, 1);
        own.deadline = us(10_000);
        b.add_frame(own);
        b.add_frame(stream("blocker", 900, 10_000, 9));
        let res = b.analyze().unwrap();
        let r = res.response("own").unwrap().wcrt;
        // Hand-computed: q=0 gives w=1900 (blocking 900 + two hp instances),
        // R(0) = 1900 + 300 = 2200 µs, which dominates all later instances.
        assert_eq!(r, us(2_200));
        assert!(r > us(1_000), "busy period must span a period boundary");
        assert!(res.schedulable());
    }

    #[test]
    fn wcrt_lower_bounded_by_transmission_time() {
        let mut b = bus();
        b.add_frame(stream("only", 270, 10_000, 0));
        let res = b.analyze().unwrap();
        assert_eq!(res.response("only").unwrap().wcrt, us(270));
    }
}
