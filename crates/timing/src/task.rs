//! Task and shared analysis result types.

use std::fmt;

use saav_sim::time::Duration;

use crate::event_model::EventModel;

/// Scheduling priority; **lower values are more important** (priority 0 is
/// the most urgent), matching common RTOS conventions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Priority(pub u32);

/// A schedulable entity: a software task on a CPU or a frame stream on a
/// bus.
#[derive(Debug, Clone)]
pub struct Task {
    /// Human-readable name used in reports.
    pub name: String,
    /// Worst-case execution (or transmission) time at nominal speed.
    pub wcet: Duration,
    /// Best-case execution time; used for output-jitter propagation.
    pub bcet: Duration,
    /// Static priority (lower value = higher priority).
    pub priority: Priority,
    /// Activation event model.
    pub events: EventModel,
    /// Relative deadline.
    pub deadline: Duration,
}

impl Task {
    /// Creates a task with `bcet == wcet`.
    ///
    /// # Panics
    /// Panics if `wcet` or `deadline` is zero.
    pub fn new(
        name: impl Into<String>,
        wcet: Duration,
        priority: Priority,
        events: EventModel,
        deadline: Duration,
    ) -> Self {
        assert!(!wcet.is_zero(), "WCET must be positive");
        assert!(!deadline.is_zero(), "deadline must be positive");
        Task {
            name: name.into(),
            wcet,
            bcet: wcet,
            priority,
            events,
            deadline,
        }
    }

    /// Sets a best-case execution time.
    ///
    /// # Panics
    /// Panics if `bcet > wcet`.
    pub fn with_bcet(mut self, bcet: Duration) -> Self {
        assert!(bcet <= self.wcet, "BCET must not exceed WCET");
        self.bcet = bcet;
        self
    }

    /// Long-run utilization contribution (WCET × rate).
    pub fn utilization(&self) -> f64 {
        self.wcet.as_secs_f64() * self.events.rate_hz()
    }
}

/// Why an analysis could not produce a bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalysisError {
    /// Total utilization is at or above 1; busy periods do not terminate.
    Overload {
        /// Utilization including the analysed task.
        utilization_pct: u32,
    },
    /// The fixpoint iteration exceeded its bound without converging.
    Diverged {
        /// Task that failed to converge.
        task: String,
    },
    /// The task set references an unknown entity.
    UnknownTask(String),
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Overload { utilization_pct } => {
                write!(f, "resource overloaded at {utilization_pct}% utilization")
            }
            AnalysisError::Diverged { task } => {
                write!(f, "response-time iteration diverged for task `{task}`")
            }
            AnalysisError::UnknownTask(name) => write!(f, "unknown task `{name}`"),
        }
    }
}

impl std::error::Error for AnalysisError {}

/// Per-task analysis outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskResponse {
    /// Task name.
    pub name: String,
    /// Worst-case response time bound.
    pub wcrt: Duration,
    /// Relative deadline for reference.
    pub deadline: Duration,
}

impl TaskResponse {
    /// Whether the bound meets the deadline.
    pub fn meets_deadline(&self) -> bool {
        self.wcrt <= self.deadline
    }

    /// Slack (deadline − WCRT), zero when the deadline is missed.
    pub fn slack(&self) -> Duration {
        self.deadline.saturating_sub(self.wcrt)
    }
}

/// Result of analysing one resource.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceAnalysis {
    /// Per-task responses, in input order.
    pub responses: Vec<TaskResponse>,
}

impl ResourceAnalysis {
    /// Whether every task meets its deadline.
    pub fn schedulable(&self) -> bool {
        self.responses.iter().all(TaskResponse::meets_deadline)
    }

    /// Looks up a task's response by name.
    pub fn response(&self, name: &str) -> Option<&TaskResponse> {
        self.responses.iter().find(|r| r.name == name)
    }

    /// Names of tasks missing their deadline.
    pub fn violations(&self) -> Vec<&str> {
        self.responses
            .iter()
            .filter(|r| !r.meets_deadline())
            .map(|r| r.name.as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn utilization_is_wcet_times_rate() {
        let t = Task::new(
            "t",
            ms(2),
            Priority(1),
            EventModel::periodic(ms(10)),
            ms(10),
        );
        assert!((t.utilization() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn bcet_validation() {
        let t = Task::new(
            "t",
            ms(2),
            Priority(1),
            EventModel::periodic(ms(10)),
            ms(10),
        )
        .with_bcet(ms(1));
        assert_eq!(t.bcet, ms(1));
    }

    #[test]
    #[should_panic(expected = "BCET")]
    fn bcet_above_wcet_rejected() {
        let _ = Task::new(
            "t",
            ms(2),
            Priority(1),
            EventModel::periodic(ms(10)),
            ms(10),
        )
        .with_bcet(ms(3));
    }

    #[test]
    fn response_slack_and_violations() {
        let ok = TaskResponse {
            name: "a".into(),
            wcrt: ms(4),
            deadline: ms(10),
        };
        let bad = TaskResponse {
            name: "b".into(),
            wcrt: ms(12),
            deadline: ms(10),
        };
        assert!(ok.meets_deadline());
        assert_eq!(ok.slack(), ms(6));
        assert!(!bad.meets_deadline());
        assert_eq!(bad.slack(), Duration::ZERO);
        let ra = ResourceAnalysis {
            responses: vec![ok, bad],
        };
        assert!(!ra.schedulable());
        assert_eq!(ra.violations(), vec!["b"]);
        assert!(ra.response("a").unwrap().meets_deadline());
    }
}
