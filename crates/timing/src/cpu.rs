//! Busy-window WCRT analysis for static-priority preemptive (SPP) CPUs.
//!
//! Classic compositional-performance-analysis formulation: for task *i* and
//! the *q*-th activation inside the level-*i* busy window,
//!
//! ```text
//! w_i(q) = q·C_i + Σ_{j ∈ hp(i)} η_j⁺(w_i(q)) · C_j        (fixpoint)
//! R_i    = max_q { w_i(q) − δ_i⁻(q) }
//! ```
//!
//! The number of activations to examine is bounded by the length of the
//! level-*i* busy window. Iterations are capped; overload is detected from
//! utilization up front, so the analysis always terminates.

use saav_sim::time::Duration;

use crate::task::{AnalysisError, ResourceAnalysis, Task, TaskResponse};

/// Iteration cap for each fixpoint computation.
const MAX_ITERATIONS: usize = 10_000;

/// A single CPU scheduled with static-priority preemption.
#[derive(Debug, Clone, Default)]
pub struct CpuAnalysis {
    tasks: Vec<Task>,
    /// Execution-time multiplier applied to all WCETs (thermal throttling
    /// couples in here; 1.0 = nominal speed).
    speed_factor: f64,
}

impl CpuAnalysis {
    /// Creates an empty analysis at nominal speed.
    pub fn new() -> Self {
        CpuAnalysis {
            tasks: Vec::new(),
            speed_factor: 1.0,
        }
    }

    /// Adds a task.
    pub fn add_task(&mut self, task: Task) -> &mut Self {
        self.tasks.push(task);
        self
    }

    /// Sets the execution-time multiplier (≥ 1 models a slowed-down PE).
    ///
    /// # Panics
    /// Panics unless `factor` is finite and positive.
    pub fn set_speed_factor(&mut self, factor: f64) -> &mut Self {
        assert!(factor.is_finite() && factor > 0.0, "bad speed factor");
        self.speed_factor = factor;
        self
    }

    /// The configured tasks.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    fn scaled_wcet(&self, t: &Task) -> Duration {
        t.wcet.mul_f64(self.speed_factor)
    }

    /// Total utilization with the current speed factor.
    pub fn utilization(&self) -> f64 {
        self.tasks
            .iter()
            .map(|t| self.scaled_wcet(t).as_secs_f64() * t.events.rate_hz())
            .sum()
    }

    /// Runs the analysis for all tasks.
    ///
    /// # Errors
    /// [`AnalysisError::Overload`] when utilization is ≥ 1,
    /// [`AnalysisError::Diverged`] when a fixpoint fails to converge.
    pub fn analyze(&self) -> Result<ResourceAnalysis, AnalysisError> {
        let u = self.utilization();
        if u >= 1.0 {
            return Err(AnalysisError::Overload {
                utilization_pct: (u * 100.0) as u32,
            });
        }
        let mut responses = Vec::with_capacity(self.tasks.len());
        for task in &self.tasks {
            let wcrt = self.wcrt_of(task)?;
            responses.push(TaskResponse {
                name: task.name.clone(),
                wcrt,
                deadline: task.deadline,
            });
        }
        Ok(ResourceAnalysis { responses })
    }

    /// WCRT bound for one task.
    ///
    /// # Errors
    /// See [`analyze`](CpuAnalysis::analyze).
    pub fn wcrt_of(&self, task: &Task) -> Result<Duration, AnalysisError> {
        let hp: Vec<&Task> = self
            .tasks
            .iter()
            .filter(|t| t.priority < task.priority)
            .collect();
        let c_i = self.scaled_wcet(task);

        // Level-i busy window length.
        let mut busy = c_i;
        for _ in 0..MAX_ITERATIONS {
            let mut total = c_i * task.events.eta_plus(busy).max(1);
            for j in &hp {
                total += self.scaled_wcet(j) * j.events.eta_plus(busy);
            }
            if total == busy {
                break;
            }
            busy = total;
        }
        let activations = task.events.eta_plus(busy).max(1);

        let mut worst = Duration::ZERO;
        for q in 1..=activations {
            let mut w = c_i * q;
            let mut converged = false;
            for _ in 0..MAX_ITERATIONS {
                let mut next = c_i * q;
                for j in &hp {
                    next += self.scaled_wcet(j) * j.events.eta_plus(w);
                }
                if next == w {
                    converged = true;
                    break;
                }
                w = next;
            }
            if !converged {
                return Err(AnalysisError::Diverged {
                    task: task.name.clone(),
                });
            }
            // Response time relative to the activation instant: the input
            // jitter is accounted for once, during output-model propagation
            // (J_out = J_in + response jitter), not here — adding it again
            // would double-count it across chained analyses.
            let r = w.saturating_sub(task.events.delta_min(q));
            worst = worst.max(r);
        }
        Ok(worst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event_model::EventModel;
    use crate::task::Priority;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    fn task(name: &str, c: u64, p: u64, prio: u32) -> Task {
        Task::new(
            name,
            ms(c),
            Priority(prio),
            EventModel::periodic(ms(p)),
            ms(p),
        )
    }

    /// Hand-computed classic example: C = (1,2,3), P = (4,6,12) ⇒
    /// R = (1, 3, 10).
    #[test]
    fn classic_three_task_example() {
        let mut cpu = CpuAnalysis::new();
        cpu.add_task(task("a", 1, 4, 0));
        cpu.add_task(task("b", 2, 6, 1));
        cpu.add_task(task("c", 3, 12, 2));
        let res = cpu.analyze().unwrap();
        assert_eq!(res.response("a").unwrap().wcrt, ms(1));
        assert_eq!(res.response("b").unwrap().wcrt, ms(3));
        assert_eq!(res.response("c").unwrap().wcrt, ms(10));
        assert!(res.schedulable());
    }

    #[test]
    fn highest_priority_task_sees_only_itself() {
        let mut cpu = CpuAnalysis::new();
        cpu.add_task(task("hi", 3, 100, 0));
        cpu.add_task(task("lo", 50, 200, 5));
        let res = cpu.analyze().unwrap();
        assert_eq!(res.response("hi").unwrap().wcrt, ms(3));
    }

    #[test]
    fn overload_is_detected() {
        let mut cpu = CpuAnalysis::new();
        cpu.add_task(task("a", 6, 10, 0));
        cpu.add_task(task("b", 6, 10, 1));
        match cpu.analyze() {
            Err(AnalysisError::Overload { utilization_pct }) => {
                assert_eq!(utilization_pct, 120)
            }
            other => panic!("expected overload, got {other:?}"),
        }
    }

    #[test]
    fn speed_factor_scales_response_times() {
        let mut cpu = CpuAnalysis::new();
        cpu.add_task(task("a", 1, 4, 0));
        cpu.add_task(task("b", 2, 12, 1));
        let nominal = cpu.analyze().unwrap().response("b").unwrap().wcrt;
        cpu.set_speed_factor(2.0);
        let slowed = cpu.analyze().unwrap().response("b").unwrap().wcrt;
        assert!(slowed > nominal);
        // b at 2x: C_b=4, C_a=2: w=4+2=6 -> eta_a(6)=2 -> 4+4=8 -> eta_a(8)=2 -> 8.
        assert_eq!(slowed, ms(8));
    }

    #[test]
    fn throttling_induces_deadline_miss() {
        // Schedulable at nominal speed, unschedulable at 2x slowdown —
        // exactly the paper's thermal scenario expressed in analysis terms.
        let mut cpu = CpuAnalysis::new();
        cpu.add_task(task("ctl", 3, 10, 0));
        cpu.add_task(task("plan", 4, 20, 1));
        assert!(cpu.analyze().unwrap().schedulable());
        cpu.set_speed_factor(2.0);
        match cpu.analyze() {
            Ok(res) => assert!(!res.schedulable()),
            Err(AnalysisError::Overload { .. }) => {}
            Err(e) => panic!("unexpected {e:?}"),
        }
    }

    #[test]
    fn jitter_in_activation_increases_interference() {
        let mut cpu = CpuAnalysis::new();
        cpu.add_task(Task::new(
            "hp",
            ms(2),
            Priority(0),
            EventModel::with_jitter(ms(10), ms(10)),
            ms(10),
        ));
        cpu.add_task(task("lo", 5, 40, 1));
        let res = cpu.analyze().unwrap();
        // Burst of two hp activations: w = 5 + 2*2 = 9, eta(9)=2 -> 9.
        assert_eq!(res.response("lo").unwrap().wcrt, ms(9));
    }

    #[test]
    fn wcrt_at_least_wcet() {
        let mut cpu = CpuAnalysis::new();
        cpu.add_task(task("a", 1, 5, 0));
        cpu.add_task(task("b", 2, 9, 1));
        cpu.add_task(task("c", 1, 17, 2));
        let res = cpu.analyze().unwrap();
        for (t, r) in cpu.tasks().iter().zip(&res.responses) {
            assert!(r.wcrt >= t.wcet, "{}", t.name);
        }
    }

    #[test]
    fn multiple_activations_in_busy_window() {
        // Deadline > period case where the busy window spans activations:
        // a: C=4, P=10, prio 0; b: C=3, P=6, prio 1? utilization 0.4+0.5=0.9
        let mut cpu = CpuAnalysis::new();
        cpu.add_task(task("a", 4, 10, 0));
        let mut b = task("b", 3, 6, 1);
        b.deadline = ms(20); // allow R > P
        cpu.add_task(b);
        let res = cpu.analyze().unwrap();
        // q=1: w=3+eta_a(w)*4: 3->7 (eta=1)->7; eta_a(7)=1 => 7; R1=7
        // q=2: w=6+eta_a*4: 6->10(eta=1)->10: eta_a(10)=1 -> 10; R2=10-6=4
        // busy window: L: 3*eta_b(L)+4*eta_a(L): L=3+4=7; eta_b(7)=2,eta_a(7)=1 -> 10
        //   eta_b(10)=2, eta_a(10)=1 -> 10. activations=2.
        assert_eq!(res.response("b").unwrap().wcrt, ms(7));
    }
}
