//! System-level compositional analysis: multiple resources, task chains and
//! jitter propagation.
//!
//! This is the outer CPA loop the MCC's timing viewpoint runs: analyse each
//! resource locally, derive output event models (input model plus response
//! jitter), propagate them along activation chains, and repeat until the
//! event models reach a fixpoint. End-to-end path latencies are computed over
//! the converged response times.

use std::collections::HashMap;

use saav_sim::time::Duration;

use crate::can_rt::CanAnalysis;
use crate::cpu::CpuAnalysis;
use crate::event_model::EventModel;
use crate::task::{AnalysisError, Task, TaskResponse};

/// Identifier of a resource within a [`SystemModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResourceId(usize);

/// Identifier of a task within a [`SystemModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(usize);

#[derive(Debug, Clone)]
enum ResourceKind {
    Cpu { speed_factor: f64 },
    Can { bit_time: Duration },
}

#[derive(Debug, Clone)]
struct Resource {
    name: String,
    kind: ResourceKind,
}

/// How a task is activated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Activated by an external event source described by the task's own
    /// event model.
    External,
    /// Activated by completion of another task (event chain).
    ChainedTo(TaskId),
}

#[derive(Debug, Clone)]
struct SysTask {
    task: Task,
    resource: ResourceId,
    activation: Activation,
}

/// A multi-resource system model for timing analysis.
#[derive(Debug, Clone, Default)]
pub struct SystemModel {
    resources: Vec<Resource>,
    tasks: Vec<SysTask>,
}

/// Result of a system-level analysis.
#[derive(Debug, Clone)]
pub struct SystemAnalysis {
    responses: HashMap<TaskId, TaskResponse>,
    /// Outer iterations until the event models converged.
    pub iterations: usize,
}

impl SystemAnalysis {
    /// Response of a task.
    pub fn response(&self, id: TaskId) -> Option<&TaskResponse> {
        self.responses.get(&id)
    }

    /// Whether every task meets its deadline.
    pub fn schedulable(&self) -> bool {
        self.responses.values().all(TaskResponse::meets_deadline)
    }

    /// Names of deadline violators, sorted for determinism.
    pub fn violations(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .responses
            .values()
            .filter(|r| !r.meets_deadline())
            .map(|r| r.name.clone())
            .collect();
        v.sort();
        v
    }

    /// Worst-case end-to-end latency along a chain of tasks: the sum of the
    /// member WCRTs (valid for event-chained paths; for sampled links add
    /// the sampling period at the consumer).
    ///
    /// # Errors
    /// Returns [`AnalysisError::UnknownTask`] if a task id is not part of
    /// the analysis.
    pub fn path_latency(&self, chain: &[TaskId]) -> Result<Duration, AnalysisError> {
        let mut total = Duration::ZERO;
        for id in chain {
            let r = self
                .responses
                .get(id)
                .ok_or_else(|| AnalysisError::UnknownTask(format!("{id:?}")))?;
            total += r.wcrt;
        }
        Ok(total)
    }
}

impl SystemModel {
    /// Creates an empty system model.
    pub fn new() -> Self {
        SystemModel::default()
    }

    /// Adds a CPU resource (static-priority preemptive).
    pub fn add_cpu(&mut self, name: impl Into<String>) -> ResourceId {
        self.resources.push(Resource {
            name: name.into(),
            kind: ResourceKind::Cpu { speed_factor: 1.0 },
        });
        ResourceId(self.resources.len() - 1)
    }

    /// Adds a CAN bus resource.
    ///
    /// # Panics
    /// Panics if `bitrate_bps` is zero.
    pub fn add_can(&mut self, name: impl Into<String>, bitrate_bps: u32) -> ResourceId {
        assert!(bitrate_bps > 0);
        self.resources.push(Resource {
            name: name.into(),
            kind: ResourceKind::Can {
                bit_time: Duration::from_nanos(1_000_000_000 / bitrate_bps as u64),
            },
        });
        ResourceId(self.resources.len() - 1)
    }

    /// Sets the execution-speed factor of a CPU (thermal throttling input).
    ///
    /// # Panics
    /// Panics if the resource is not a CPU or the factor is not positive.
    pub fn set_cpu_speed_factor(&mut self, id: ResourceId, factor: f64) {
        assert!(factor.is_finite() && factor > 0.0);
        match &mut self.resources[id.0].kind {
            ResourceKind::Cpu { speed_factor } => *speed_factor = factor,
            ResourceKind::Can { .. } => panic!("resource is not a CPU"),
        }
    }

    /// Adds a task (or frame stream) to a resource.
    pub fn add_task(&mut self, resource: ResourceId, task: Task, activation: Activation) -> TaskId {
        self.tasks.push(SysTask {
            task,
            resource,
            activation,
        });
        TaskId(self.tasks.len() - 1)
    }

    /// Resource name lookup.
    pub fn resource_name(&self, id: ResourceId) -> &str {
        &self.resources[id.0].name
    }

    /// Number of tasks in the model.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Runs the global CPA fixpoint.
    ///
    /// # Errors
    /// Propagates local analysis errors ([`AnalysisError::Overload`],
    /// [`AnalysisError::Diverged`]); returns [`AnalysisError::Diverged`]
    /// with task `"<system>"` if the outer loop does not converge.
    pub fn analyze(&self) -> Result<SystemAnalysis, AnalysisError> {
        const MAX_OUTER: usize = 100;
        // Current input event model per task.
        let mut inputs: Vec<EventModel> = self.tasks.iter().map(|t| t.task.events).collect();
        // Chained tasks start from their own declared model's period but
        // inherit the source period (periods must agree along a chain).
        for (i, st) in self.tasks.iter().enumerate() {
            if let Activation::ChainedTo(src) = st.activation {
                inputs[i] = EventModel::new(
                    self.tasks[src.0].task.events.period(),
                    Duration::ZERO,
                    self.tasks[src.0].task.events.d_min(),
                );
            }
        }

        let mut responses: HashMap<TaskId, TaskResponse> = HashMap::new();
        for iteration in 1..=MAX_OUTER {
            // Analyse every resource with the current input models.
            responses.clear();
            for (rid, _res) in self.resources.iter().enumerate() {
                let members: Vec<usize> = (0..self.tasks.len())
                    .filter(|&i| self.tasks[i].resource.0 == rid)
                    .collect();
                if members.is_empty() {
                    continue;
                }
                let local = self.analyze_resource(rid, &members, &inputs)?;
                for (&ti, resp) in members.iter().zip(local) {
                    responses.insert(TaskId(ti), resp);
                }
            }
            // Propagate output jitter along chains.
            let mut changed = false;
            for (i, st) in self.tasks.iter().enumerate() {
                if let Activation::ChainedTo(src) = st.activation {
                    let src_resp = responses
                        .get(&src)
                        .ok_or_else(|| AnalysisError::UnknownTask(st.task.name.clone()))?;
                    let src_in = inputs[src.0];
                    let response_jitter = src_resp.wcrt.saturating_sub(self.tasks[src.0].task.bcet);
                    let new_model = src_in.with_added_jitter(response_jitter);
                    if new_model != inputs[i] {
                        inputs[i] = new_model;
                        changed = true;
                    }
                }
            }
            if !changed {
                return Ok(SystemAnalysis {
                    responses,
                    iterations: iteration,
                });
            }
        }
        Err(AnalysisError::Diverged {
            task: "<system>".into(),
        })
    }

    fn analyze_resource(
        &self,
        rid: usize,
        members: &[usize],
        inputs: &[EventModel],
    ) -> Result<Vec<TaskResponse>, AnalysisError> {
        match self.resources[rid].kind {
            ResourceKind::Cpu { speed_factor } => {
                let mut cpu = CpuAnalysis::new();
                cpu.set_speed_factor(speed_factor);
                for &i in members {
                    let mut t = self.tasks[i].task.clone();
                    t.events = inputs[i];
                    cpu.add_task(t);
                }
                cpu.analyze().map(|r| r.responses)
            }
            ResourceKind::Can { bit_time } => {
                let mut can = CanAnalysis::new(bit_time);
                for &i in members {
                    let mut t = self.tasks[i].task.clone();
                    t.events = inputs[i];
                    can.add_frame(t);
                }
                can.analyze().map(|r| r.responses)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::Priority;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    fn task(name: &str, c_ms: u64, p_ms: u64, prio: u32, d_ms: u64) -> Task {
        Task::new(
            name,
            ms(c_ms),
            Priority(prio),
            EventModel::periodic(ms(p_ms)),
            ms(d_ms),
        )
    }

    /// Sensor task on CPU0 -> CAN frame -> actuator task on CPU1.
    fn sensor_to_actuator() -> (SystemModel, TaskId, TaskId, TaskId) {
        let mut sys = SystemModel::new();
        let cpu0 = sys.add_cpu("cpu0");
        let can = sys.add_can("can0", 500_000);
        let cpu1 = sys.add_cpu("cpu1");
        let sense = sys.add_task(
            cpu0,
            task("sense", 2, 10, 0, 5).with_bcet(ms(1)),
            Activation::External,
        );
        let mut frame = Task::new(
            "frame",
            Duration::from_micros(270),
            Priority(3),
            EventModel::periodic(ms(10)),
            ms(10),
        );
        frame.bcet = Duration::from_micros(94);
        let frame = sys.add_task(can, frame, Activation::ChainedTo(sense));
        let act = sys.add_task(
            cpu1,
            task("actuate", 1, 10, 0, 10),
            Activation::ChainedTo(frame),
        );
        (sys, sense, frame, act)
    }

    #[test]
    fn chained_system_converges_and_is_schedulable() {
        let (sys, sense, frame, act) = sensor_to_actuator();
        let res = sys.analyze().unwrap();
        assert!(res.schedulable());
        assert!(res.iterations >= 2, "jitter propagation needs a 2nd pass");
        let r_sense = res.response(sense).unwrap().wcrt;
        let r_frame = res.response(frame).unwrap().wcrt;
        let r_act = res.response(act).unwrap().wcrt;
        assert_eq!(r_sense, ms(2));
        assert!(r_frame >= Duration::from_micros(270));
        assert!(r_act >= ms(1));
        let path = res.path_latency(&[sense, frame, act]).unwrap();
        assert_eq!(path, r_sense + r_frame + r_act);
    }

    #[test]
    fn chained_jitter_inflates_downstream_interference() {
        // Two tasks on a CPU; the chained high-priority one inherits jitter
        // from a long-running predecessor, bursting onto the victim.
        let mut sys = SystemModel::new();
        let cpu0 = sys.add_cpu("cpu0");
        let cpu1 = sys.add_cpu("cpu1");
        let producer = sys.add_task(
            cpu0,
            task("producer", 8, 20, 0, 20).with_bcet(ms(1)),
            Activation::External,
        );
        let consumer = sys.add_task(
            cpu1,
            task("consumer", 2, 20, 0, 20),
            Activation::ChainedTo(producer),
        );
        let victim = sys.add_task(cpu1, task("victim", 5, 40, 1, 40), Activation::External);
        let res = sys.analyze().unwrap();
        // Producer R = 8, bcet 1 -> consumer jitter 7ms. In a window of
        // (5 + 2x) the consumer can hit twice once jitter >= 13... With J=7:
        // victim w: 5 + eta_c(w)*2. w=7: eta = ceil((7+7)/20)=1 -> 7.
        // So jitter here stays below the burst threshold; check exactness:
        assert_eq!(res.response(victim).unwrap().wcrt, ms(7));
        assert_eq!(res.response(consumer).unwrap().wcrt, ms(2));
    }

    #[test]
    fn cpu_slowdown_breaks_schedulability_system_wide() {
        let (sys, ..) = sensor_to_actuator();
        let mut slow = sys.clone();
        // cpu0 is ResourceId(0) in construction order. A 4x slowdown keeps
        // utilization below 1 (0.8) but pushes `sense` past its 5 ms
        // deadline.
        slow.set_cpu_speed_factor(ResourceId(0), 4.0);
        let res = slow.analyze().unwrap();
        assert!(!res.schedulable());
        assert_eq!(res.violations(), vec!["sense".to_string()]);
    }

    #[test]
    fn unknown_task_in_path_is_error() {
        let (sys, sense, ..) = sensor_to_actuator();
        let res = sys.analyze().unwrap();
        assert!(res.path_latency(&[sense, TaskId(99)]).is_err());
    }

    #[test]
    fn empty_model_analyzes_trivially() {
        let sys = SystemModel::new();
        let res = sys.analyze().unwrap();
        assert!(res.schedulable());
        assert_eq!(res.iterations, 1);
    }

    #[test]
    fn resource_names_are_kept() {
        let mut sys = SystemModel::new();
        let c = sys.add_cpu("ecu-front");
        assert_eq!(sys.resource_name(c), "ecu-front");
    }
}
