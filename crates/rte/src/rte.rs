//! The run-time environment facade: component registry, service sessions,
//! VMs with memory quotas, and atomic reconfiguration.
//!
//! [`Rte`] ties the execution-domain pieces together the way the CCC
//! architecture (Fig. 1 of the paper) describes: application components run
//! inside VMs on top of a microkernel-style RTE, interact only through
//! capability-checked service sessions, and are reconfigured at run time by
//! configurations that the model domain (the MCC) has accepted.

use std::collections::HashMap;
use std::fmt;

use saav_sim::time::Time;

use crate::access::AccessControl;
use crate::component::{ComponentId, ComponentSpec, ComponentState, ServiceName, VmId};
use crate::sched::{JobRecord, Scheduler, TaskRef, TaskSpec};

/// Identifier of an open service session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionId(pub usize);

/// Errors of the run-time environment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RteError {
    /// Component name is already installed.
    DuplicateComponent(String),
    /// Referenced component does not exist.
    UnknownComponent(String),
    /// Referenced VM does not exist.
    UnknownVm(VmId),
    /// No provider registered for the service.
    UnknownService(ServiceName),
    /// Capability check failed.
    AccessDenied {
        /// The requesting component.
        client: ComponentId,
        /// The service that was requested.
        service: ServiceName,
    },
    /// The component is stopped or quarantined.
    ComponentNotRunning(ComponentId),
    /// Installing the component would exceed the VM's memory quota.
    MemoryExceeded {
        /// The VM whose quota would be exceeded.
        vm: VmId,
    },
    /// The session is closed or invalid.
    InvalidSession(SessionId),
}

impl fmt::Display for RteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RteError::DuplicateComponent(n) => write!(f, "component `{n}` already installed"),
            RteError::UnknownComponent(n) => write!(f, "unknown component `{n}`"),
            RteError::UnknownVm(vm) => write!(f, "unknown VM {vm}"),
            RteError::UnknownService(s) => write!(f, "no provider for service `{s}`"),
            RteError::AccessDenied { client, service } => {
                write!(f, "{client} denied access to `{service}`")
            }
            RteError::ComponentNotRunning(c) => write!(f, "{c} is not running"),
            RteError::MemoryExceeded { vm } => write!(f, "memory quota of {vm} exceeded"),
            RteError::InvalidSession(s) => write!(f, "invalid session {s:?}"),
        }
    }
}

impl std::error::Error for RteError {}

#[derive(Debug)]
struct ComponentEntry {
    spec: ComponentSpec,
    state: ComponentState,
    tasks: Vec<TaskRef>,
}

#[derive(Debug)]
struct VmEntry {
    memory_limit_kib: u32,
}

#[derive(Debug, Clone)]
struct SessionEntry {
    client: ComponentId,
    service: ServiceName,
    open: bool,
}

/// A configuration delta produced by the model domain: components to add,
/// their tasks, and the capability grants wiring them up.
#[derive(Debug, Clone, Default)]
pub struct Configuration {
    /// Components to install.
    pub components: Vec<ComponentSpec>,
    /// Tasks to register, referencing components by name.
    pub tasks: Vec<(String, TaskSpec)>,
    /// Grants `(client name, service)` to install.
    pub grants: Vec<(String, ServiceName)>,
}

/// The run-time environment.
#[derive(Debug)]
pub struct Rte {
    components: Vec<ComponentEntry>,
    by_name: HashMap<String, ComponentId>,
    providers: HashMap<ServiceName, ComponentId>,
    access: AccessControl,
    scheduler: Scheduler,
    sessions: Vec<SessionEntry>,
    vms: Vec<VmEntry>,
}

impl Rte {
    /// Creates an RTE with a single default VM of the given memory size.
    pub fn new(seed: u64, default_vm_kib: u32) -> Self {
        Rte {
            components: Vec::new(),
            by_name: HashMap::new(),
            providers: HashMap::new(),
            access: AccessControl::new(),
            scheduler: Scheduler::new(seed),
            sessions: Vec::new(),
            vms: vec![VmEntry {
                memory_limit_kib: default_vm_kib,
            }],
        }
    }

    /// Adds an execution domain (VM) with a memory quota.
    pub fn add_vm(&mut self, memory_limit_kib: u32) -> VmId {
        self.vms.push(VmEntry { memory_limit_kib });
        VmId(self.vms.len() - 1)
    }

    /// Number of VMs.
    pub fn vm_count(&self) -> usize {
        self.vms.len()
    }

    /// Memory currently allocated in a VM (running or stopped components).
    pub fn vm_memory_used_kib(&self, vm: VmId) -> u32 {
        self.components
            .iter()
            .filter(|c| c.spec.vm == vm)
            .map(|c| c.spec.memory_kib)
            .sum()
    }

    /// Installs a component.
    ///
    /// # Errors
    /// [`RteError::DuplicateComponent`], [`RteError::UnknownVm`] or
    /// [`RteError::MemoryExceeded`].
    pub fn install(&mut self, spec: ComponentSpec) -> Result<ComponentId, RteError> {
        if self.by_name.contains_key(&spec.name) {
            return Err(RteError::DuplicateComponent(spec.name));
        }
        let vm = spec.vm;
        let limit = self
            .vms
            .get(vm.0)
            .ok_or(RteError::UnknownVm(vm))?
            .memory_limit_kib;
        if self.vm_memory_used_kib(vm) + spec.memory_kib > limit {
            return Err(RteError::MemoryExceeded { vm });
        }
        let id = ComponentId(self.components.len());
        self.by_name.insert(spec.name.clone(), id);
        for s in &spec.provides {
            self.providers.insert(s.clone(), id);
        }
        self.components.push(ComponentEntry {
            spec,
            state: ComponentState::Running,
            tasks: Vec::new(),
        });
        Ok(id)
    }

    /// Looks up a component by name.
    pub fn component_by_name(&self, name: &str) -> Option<ComponentId> {
        self.by_name.get(name).copied()
    }

    /// Component state.
    ///
    /// # Panics
    /// Panics on an invalid id.
    pub fn state(&self, id: ComponentId) -> ComponentState {
        self.components[id.0].state
    }

    /// The provider of a service, if registered.
    pub fn provider_of(&self, service: &ServiceName) -> Option<ComponentId> {
        self.providers.get(service).copied()
    }

    /// Registers a periodic task for a component.
    ///
    /// # Errors
    /// [`RteError::UnknownComponent`] when the task's component id is
    /// invalid.
    pub fn add_task(&mut self, mut spec: TaskSpec) -> Result<TaskRef, RteError> {
        let cid = spec.component;
        if cid.0 >= self.components.len() {
            return Err(RteError::UnknownComponent(format!("{cid}")));
        }
        spec.component = cid;
        let task = self.scheduler.add_task(spec);
        self.components[cid.0].tasks.push(task);
        Ok(task)
    }

    /// Grants a capability.
    pub fn grant(&mut self, client: ComponentId, service: impl Into<ServiceName>) {
        self.access.grant(client, service);
    }

    /// Opens a session from `client` to `service`, enforcing capability
    /// checks and liveness of both ends. Every attempt is recorded in the
    /// access log.
    ///
    /// # Errors
    /// [`RteError::AccessDenied`], [`RteError::UnknownService`] or
    /// [`RteError::ComponentNotRunning`].
    pub fn open_session(
        &mut self,
        client: ComponentId,
        service: impl Into<ServiceName>,
        now: Time,
    ) -> Result<SessionId, RteError> {
        let service = service.into();
        if self.components[client.0].state != ComponentState::Running {
            return Err(RteError::ComponentNotRunning(client));
        }
        if !self.access.check(now, client, &service) {
            return Err(RteError::AccessDenied { client, service });
        }
        let provider = self
            .providers
            .get(&service)
            .copied()
            .ok_or_else(|| RteError::UnknownService(service.clone()))?;
        if self.components[provider.0].state != ComponentState::Running {
            return Err(RteError::ComponentNotRunning(provider));
        }
        self.sessions.push(SessionEntry {
            client,
            service,
            open: true,
        });
        Ok(SessionId(self.sessions.len() - 1))
    }

    /// Performs one call on an open session (message-level accounting).
    ///
    /// # Errors
    /// [`RteError::InvalidSession`] when the session is closed, or
    /// [`RteError::ComponentNotRunning`] when the provider has been stopped
    /// or quarantined meanwhile.
    pub fn call(&mut self, session: SessionId, now: Time) -> Result<(), RteError> {
        let entry = self
            .sessions
            .get(session.0)
            .cloned()
            .filter(|s| s.open)
            .ok_or(RteError::InvalidSession(session))?;
        let provider = self
            .providers
            .get(&entry.service)
            .copied()
            .ok_or_else(|| RteError::UnknownService(entry.service.clone()))?;
        if self.components[provider.0].state != ComponentState::Running {
            return Err(RteError::ComponentNotRunning(provider));
        }
        self.access.record_use(now, entry.client, &entry.service);
        Ok(())
    }

    /// Quarantines a component: tasks descheduled, sessions revoked,
    /// capabilities withdrawn. This is the paper's "shut down the affected
    /// component" countermeasure.
    ///
    /// # Panics
    /// Panics on an invalid id.
    pub fn quarantine(&mut self, id: ComponentId) {
        self.components[id.0].state = ComponentState::Quarantined;
        self.scheduler.deactivate_component(id);
        self.access.revoke_all(id);
        for s in &mut self.sessions {
            if s.client == id {
                s.open = false;
            }
        }
    }

    /// Stops a component (restartable administrative stop).
    ///
    /// # Panics
    /// Panics on an invalid id.
    pub fn stop(&mut self, id: ComponentId) {
        self.components[id.0].state = ComponentState::Stopped;
        self.scheduler.deactivate_component(id);
    }

    /// Restarts a stopped (not quarantined) component.
    ///
    /// # Errors
    /// [`RteError::ComponentNotRunning`] when the component is quarantined.
    pub fn restart(&mut self, id: ComponentId) -> Result<(), RteError> {
        let entry = &mut self.components[id.0];
        if entry.state == ComponentState::Quarantined {
            return Err(RteError::ComponentNotRunning(id));
        }
        entry.state = ComponentState::Running;
        let tasks = entry.tasks.clone();
        for t in tasks {
            self.scheduler.set_active(t, true);
        }
        Ok(())
    }

    /// Applies a configuration delta atomically: either all components,
    /// tasks and grants are installed, or the RTE is left untouched.
    ///
    /// # Errors
    /// Any installation error; validation happens before mutation.
    pub fn apply_configuration(&mut self, config: Configuration) -> Result<(), RteError> {
        // Validation pass.
        let mut names: Vec<&str> = Vec::new();
        let mut vm_extra: HashMap<VmId, u32> = HashMap::new();
        for spec in &config.components {
            if self.by_name.contains_key(&spec.name) || names.contains(&spec.name.as_str()) {
                return Err(RteError::DuplicateComponent(spec.name.clone()));
            }
            names.push(&spec.name);
            if spec.vm.0 >= self.vms.len() {
                return Err(RteError::UnknownVm(spec.vm));
            }
            *vm_extra.entry(spec.vm).or_insert(0) += spec.memory_kib;
        }
        for (vm, extra) in &vm_extra {
            if self.vm_memory_used_kib(*vm) + extra > self.vms[vm.0].memory_limit_kib {
                return Err(RteError::MemoryExceeded { vm: *vm });
            }
        }
        for (name, _) in &config.tasks {
            if !self.by_name.contains_key(name) && !names.contains(&name.as_str()) {
                return Err(RteError::UnknownComponent(name.clone()));
            }
        }
        for (client, _) in &config.grants {
            if !self.by_name.contains_key(client) && !names.contains(&client.as_str()) {
                return Err(RteError::UnknownComponent(client.clone()));
            }
        }
        // Mutation pass (infallible by construction).
        for spec in config.components {
            self.install(spec).expect("validated install");
        }
        for (name, mut task) in config.tasks {
            let cid = self.by_name[&name];
            task.component = cid;
            self.add_task(task).expect("validated task");
        }
        for (client, service) in config.grants {
            let cid = self.by_name[&client];
            self.grant(cid, service);
        }
        Ok(())
    }

    /// Advances the scheduler (see [`Scheduler::advance`]).
    ///
    /// # Panics
    /// Panics if `to` is in the past or `speed_factor <= 0`.
    pub fn advance(&mut self, to: Time, speed_factor: f64) {
        self.scheduler.advance(to, speed_factor);
    }

    /// Drains completed job records.
    pub fn take_records(&mut self) -> Vec<JobRecord> {
        self.scheduler.take_records()
    }

    /// Drains completed job records into a caller-owned buffer, retaining
    /// both buffers' capacity (the allocation-free variant of
    /// [`Self::take_records`]).
    pub fn drain_records_into(&mut self, buf: &mut Vec<JobRecord>) {
        self.scheduler.drain_records_into(buf);
    }

    /// Drains the access log.
    pub fn take_access_log(&mut self) -> Vec<crate::access::AccessEvent> {
        self.access.drain_log()
    }

    /// CPU utilization since the last call.
    pub fn take_utilization(&mut self) -> f64 {
        self.scheduler.take_utilization()
    }

    /// Mutable access to the scheduler (fault injection in scenarios).
    pub fn scheduler_mut(&mut self) -> &mut Scheduler {
        &mut self.scheduler
    }

    /// Immutable access to the scheduler.
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::Priority;
    use saav_sim::time::Duration;

    fn rte() -> Rte {
        Rte::new(1, 1024)
    }

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn install_and_lookup() {
        let mut r = rte();
        let id = r
            .install(ComponentSpec::new("radar", VmId(0)).provides("sensor.radar"))
            .unwrap();
        assert_eq!(r.component_by_name("radar"), Some(id));
        assert_eq!(r.provider_of(&"sensor.radar".into()), Some(id));
        assert_eq!(r.state(id), ComponentState::Running);
        assert!(matches!(
            r.install(ComponentSpec::new("radar", VmId(0))),
            Err(RteError::DuplicateComponent(_))
        ));
    }

    #[test]
    fn memory_quota_enforced_per_vm() {
        let mut r = rte();
        let vm = r.add_vm(100);
        r.install(ComponentSpec::new("a", vm).with_memory_kib(60))
            .unwrap();
        assert_eq!(
            r.install(ComponentSpec::new("b", vm).with_memory_kib(60)),
            Err(RteError::MemoryExceeded { vm })
        );
        assert_eq!(r.vm_memory_used_kib(vm), 60);
    }

    #[test]
    fn session_requires_grant_provider_and_liveness() {
        let mut r = rte();
        let radar = r
            .install(ComponentSpec::new("radar", VmId(0)).provides("sensor.radar"))
            .unwrap();
        let acc = r.install(ComponentSpec::new("acc", VmId(0))).unwrap();
        // No grant yet.
        assert!(matches!(
            r.open_session(acc, "sensor.radar", Time::ZERO),
            Err(RteError::AccessDenied { .. })
        ));
        r.grant(acc, "sensor.radar");
        let session = r.open_session(acc, "sensor.radar", Time::ZERO).unwrap();
        r.call(session, Time::ZERO).unwrap();
        // Unknown service.
        r.grant(acc, "does.not.exist");
        assert!(matches!(
            r.open_session(acc, "does.not.exist", Time::ZERO),
            Err(RteError::UnknownService(_))
        ));
        // Stopped provider.
        r.stop(radar);
        assert!(matches!(
            r.call(session, Time::ZERO),
            Err(RteError::ComponentNotRunning(_))
        ));
    }

    #[test]
    fn quarantine_revokes_everything() {
        let mut r = rte();
        let brake = r
            .install(ComponentSpec::new("brake", VmId(0)).provides("actuator.brake"))
            .unwrap();
        let acc = r.install(ComponentSpec::new("acc", VmId(0))).unwrap();
        r.grant(acc, "actuator.brake");
        let session = r.open_session(acc, "actuator.brake", Time::ZERO).unwrap();
        r.add_task(TaskSpec::periodic(
            "brake_task",
            brake,
            ms(10),
            ms(1),
            Priority(0),
        ))
        .unwrap();
        r.quarantine(brake);
        assert_eq!(r.state(brake), ComponentState::Quarantined);
        assert!(r.call(session, Time::from_millis(1)).is_err());
        assert!(r.restart(brake).is_err(), "quarantine is sticky");
        r.advance(Time::from_millis(50), 1.0);
        assert!(r.take_records().is_empty(), "no jobs for quarantined comp");
    }

    #[test]
    fn stop_restart_cycle() {
        let mut r = rte();
        let c = r.install(ComponentSpec::new("fn", VmId(0))).unwrap();
        r.add_task(TaskSpec::periodic("t", c, ms(10), ms(1), Priority(0)))
            .unwrap();
        r.advance(Time::from_millis(20), 1.0);
        assert!(!r.take_records().is_empty());
        r.stop(c);
        r.advance(Time::from_millis(40), 1.0);
        assert!(r.take_records().is_empty());
        r.restart(c).unwrap();
        r.advance(Time::from_millis(80), 1.0);
        assert!(!r.take_records().is_empty());
    }

    #[test]
    fn configuration_applies_atomically() {
        let mut r = rte();
        let good = Configuration {
            components: vec![
                ComponentSpec::new("radar", VmId(0)).provides("sensor.radar"),
                ComponentSpec::new("acc", VmId(0)).requires("sensor.radar"),
            ],
            tasks: vec![(
                "acc".into(),
                TaskSpec::periodic("acc_ctl", ComponentId(0), ms(10), ms(2), Priority(1)),
            )],
            grants: vec![("acc".into(), "sensor.radar".into())],
        };
        r.apply_configuration(good).unwrap();
        let acc = r.component_by_name("acc").unwrap();
        assert!(r.open_session(acc, "sensor.radar", Time::ZERO).is_ok());

        // A bad configuration (unknown VM) must change nothing.
        let before = r.vm_memory_used_kib(VmId(0));
        let bad = Configuration {
            components: vec![
                ComponentSpec::new("x", VmId(0)),
                ComponentSpec::new("y", VmId(9)),
            ],
            ..Configuration::default()
        };
        assert!(matches!(
            r.apply_configuration(bad),
            Err(RteError::UnknownVm(_))
        ));
        assert_eq!(r.component_by_name("x"), None, "atomicity violated");
        assert_eq!(r.vm_memory_used_kib(VmId(0)), before);
    }

    #[test]
    fn access_log_captures_denials_for_monitors() {
        let mut r = rte();
        r.install(ComponentSpec::new("victim", VmId(0)).provides("svc"))
            .unwrap();
        let attacker = r.install(ComponentSpec::new("attacker", VmId(0))).unwrap();
        for i in 0..5 {
            let _ = r.open_session(attacker, "svc", Time::from_millis(i));
        }
        let log = r.take_access_log();
        assert_eq!(log.len(), 5);
        assert!(log.iter().all(|e| !e.allowed));
    }
}
