//! Components, services and execution domains (VMs).
//!
//! The CCC execution domain is built on microkernel component semantics:
//! *micro servers* provide named services, other components require them,
//! and every interaction needs an explicit capability (least privilege).
//! Components are grouped into VMs — the isolated execution domains that
//! Sec. III of the paper motivates.

use std::fmt;

/// Identifier of a component instance inside an [`Rte`].
///
/// [`Rte`]: crate::rte::Rte
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ComponentId(pub usize);

impl fmt::Display for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "comp{}", self.0)
    }
}

/// Identifier of an execution domain (virtual machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VmId(pub usize);

impl fmt::Display for VmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vm{}", self.0)
    }
}

/// A service name, e.g. `"sensor.radar"` or `"actuator.brake.rear"`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ServiceName(String);

impl ServiceName {
    /// Creates a service name.
    ///
    /// # Panics
    /// Panics if `name` is empty.
    pub fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        assert!(!name.is_empty(), "service name must not be empty");
        ServiceName(name)
    }

    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ServiceName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ServiceName {
    fn from(s: &str) -> Self {
        ServiceName::new(s)
    }
}

/// Lifecycle state of a component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComponentState {
    /// Scheduled and servicing requests.
    Running,
    /// Stopped by an administrative action (e.g. before an update).
    Stopped,
    /// Forcibly isolated after a detected compromise or fault; its tasks are
    /// descheduled and all its sessions are revoked.
    Quarantined,
}

/// Static description of a component.
#[derive(Debug, Clone)]
pub struct ComponentSpec {
    /// Unique component name.
    pub name: String,
    /// Services this component provides (as a micro server).
    pub provides: Vec<ServiceName>,
    /// Services this component requires.
    pub requires: Vec<ServiceName>,
    /// Execution domain the component lives in.
    pub vm: VmId,
    /// Memory quota in KiB (spatial isolation).
    pub memory_kib: u32,
}

impl ComponentSpec {
    /// Creates a spec with no services and a 64 KiB quota in the given VM.
    pub fn new(name: impl Into<String>, vm: VmId) -> Self {
        ComponentSpec {
            name: name.into(),
            provides: Vec::new(),
            requires: Vec::new(),
            vm,
            memory_kib: 64,
        }
    }

    /// Adds a provided service.
    pub fn provides(mut self, service: impl Into<ServiceName>) -> Self {
        self.provides.push(service.into());
        self
    }

    /// Adds a required service.
    pub fn requires(mut self, service: impl Into<ServiceName>) -> Self {
        self.requires.push(service.into());
        self
    }

    /// Sets the memory quota.
    pub fn with_memory_kib(mut self, kib: u32) -> Self {
        self.memory_kib = kib;
        self
    }
}

impl From<&str> for ComponentSpec {
    fn from(name: &str) -> Self {
        ComponentSpec::new(name, VmId(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_builder() {
        let spec = ComponentSpec::new("acc", VmId(1))
            .provides("control.acc")
            .requires("sensor.radar")
            .requires("actuator.powertrain")
            .with_memory_kib(128);
        assert_eq!(spec.name, "acc");
        assert_eq!(spec.provides.len(), 1);
        assert_eq!(spec.requires.len(), 2);
        assert_eq!(spec.memory_kib, 128);
        assert_eq!(spec.vm, VmId(1));
    }

    #[test]
    fn service_name_display_and_eq() {
        let a = ServiceName::new("sensor.radar");
        let b: ServiceName = "sensor.radar".into();
        assert_eq!(a, b);
        assert_eq!(a.to_string(), "sensor.radar");
        assert_eq!(a.as_str(), "sensor.radar");
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_service_name_rejected() {
        let _ = ServiceName::new("");
    }

    #[test]
    fn ids_format() {
        assert_eq!(ComponentId(3).to_string(), "comp3");
        assert_eq!(VmId(2).to_string(), "vm2");
    }
}
