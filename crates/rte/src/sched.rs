//! Fixed-priority preemptive scheduling with execution budgets.
//!
//! The execution-domain counterpart of the timing viewpoint's analysis
//! model: periodic tasks belonging to components run under static-priority
//! preemption. Execution times scale with the hosting PE's speed factor
//! (thermal throttling hook), and per-job *budgets* can be enforced — the
//! run-time mechanism the paper's execution domain uses to make model
//! assumptions hold ("enforce … real-time behavior where necessary",
//! Sec. II-B).
//!
//! The scheduler is advanced incrementally ([`Scheduler::advance`]) so the
//! surrounding co-simulation can change the speed factor between segments.

use saav_sim::name::Name;
use saav_sim::rng::SimRng;
use saav_sim::time::{Duration, Time};

use crate::component::ComponentId;

/// Scheduling priority; lower values run first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Priority(pub u32);

/// Reference to a task registered with a [`Scheduler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskRef(pub usize);

/// What to do when a job exhausts its execution budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BudgetEnforcement {
    /// Abort the job at the budget boundary (hard enforcement).
    #[default]
    Truncate,
    /// Let the job continue but mark the record (detection only).
    ReportOnly,
}

/// Static description of a periodic task.
#[derive(Debug, Clone)]
pub struct TaskSpec {
    /// Task name used in records and reports. Interned so every job record
    /// can carry it without allocating.
    pub name: Name,
    /// Component this task belongs to.
    pub component: ComponentId,
    /// Activation period.
    pub period: Duration,
    /// First release offset.
    pub offset: Duration,
    /// Contracted worst-case execution time at nominal speed.
    pub wcet: Duration,
    /// Relative deadline.
    pub deadline: Duration,
    /// Static priority.
    pub priority: Priority,
    /// Actual execution time varies uniformly in
    /// `[exec_frac_min, exec_frac_max] · wcet`.
    pub exec_frac_min: f64,
    /// Upper execution fraction (values above 1 model contract violations).
    pub exec_frac_max: f64,
    /// Optional per-job execution budget (nominal time).
    pub budget: Option<Duration>,
}

impl TaskSpec {
    /// A periodic task with deterministic execution at 80% of its WCET and
    /// deadline equal to its period.
    ///
    /// # Panics
    /// Panics if `period` or `wcet` is zero.
    pub fn periodic(
        name: impl Into<Name>,
        component: ComponentId,
        period: Duration,
        wcet: Duration,
        priority: Priority,
    ) -> Self {
        assert!(!period.is_zero() && !wcet.is_zero());
        TaskSpec {
            name: name.into(),
            component,
            period,
            offset: Duration::ZERO,
            wcet,
            deadline: period,
            priority,
            exec_frac_min: 0.8,
            exec_frac_max: 0.8,
            budget: None,
        }
    }

    /// Sets the execution-time fraction range.
    ///
    /// # Panics
    /// Panics unless `0 < min <= max`.
    pub fn with_exec_fraction(mut self, min: f64, max: f64) -> Self {
        assert!(min > 0.0 && min <= max, "bad execution fraction range");
        self.exec_frac_min = min;
        self.exec_frac_max = max;
        self
    }

    /// Sets an explicit relative deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = deadline;
        self
    }

    /// Sets a per-job budget.
    pub fn with_budget(mut self, budget: Duration) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Sets the first release offset.
    pub fn with_offset(mut self, offset: Duration) -> Self {
        self.offset = offset;
        self
    }
}

/// Outcome of one completed (or truncated) job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// The task this job belonged to.
    pub task: TaskRef,
    /// Task name (shared with the spec; cloning is a refcount bump).
    pub name: Name,
    /// Component owning the task.
    pub component: ComponentId,
    /// Release instant.
    pub release: Time,
    /// Completion (or truncation) instant.
    pub finish: Time,
    /// `finish − release`.
    pub response: Duration,
    /// Wall-clock execution time consumed.
    pub exec_wall: Duration,
    /// Nominal (speed-normalized) execution demand of the job.
    pub exec_nominal: Duration,
    /// Whether the job finished by its absolute deadline.
    pub deadline_met: bool,
    /// Whether budget enforcement truncated the job.
    pub truncated: bool,
}

#[derive(Debug, Clone)]
struct TaskState {
    spec: TaskSpec,
    next_release: Time,
    active: bool,
    /// Pending (factor, jobs) overrun injection.
    overrun: Option<(f64, u64)>,
    jobs_released: u64,
    misses: u64,
    truncations: u64,
}

#[derive(Debug, Clone)]
struct ActiveJob {
    task: usize,
    release: Time,
    deadline_at: Time,
    /// Remaining nominal execution in ns (f64 to avoid compounding rounding
    /// across speed-factor segments).
    remaining_ns: f64,
    /// Remaining budget in nominal ns.
    budget_ns: Option<f64>,
    exec_nominal: Duration,
    exec_wall_ns: f64,
    seq: u64,
}

/// A single-PE fixed-priority preemptive scheduler.
#[derive(Debug)]
pub struct Scheduler {
    tasks: Vec<TaskState>,
    jobs: Vec<ActiveJob>,
    now: Time,
    rng: SimRng,
    records: Vec<JobRecord>,
    enforcement: BudgetEnforcement,
    next_seq: u64,
    busy_ns: f64,
    window_start: Time,
}

impl Scheduler {
    /// Creates a scheduler with hard budget enforcement.
    pub fn new(seed: u64) -> Self {
        Scheduler {
            tasks: Vec::new(),
            jobs: Vec::new(),
            now: Time::ZERO,
            rng: SimRng::seed_from(seed),
            records: Vec::new(),
            enforcement: BudgetEnforcement::Truncate,
            next_seq: 0,
            busy_ns: 0.0,
            window_start: Time::ZERO,
        }
    }

    /// Selects the budget enforcement mode.
    pub fn set_enforcement(&mut self, mode: BudgetEnforcement) {
        self.enforcement = mode;
    }

    /// Registers a task; it becomes active immediately. When added mid-run,
    /// its first release is aligned to the next period boundary — releases
    /// are never scheduled in the past (which would burst a backlog of
    /// already-missed jobs).
    pub fn add_task(&mut self, spec: TaskSpec) -> TaskRef {
        let mut next_release = Time::ZERO + spec.offset;
        if next_release < self.now {
            let elapsed = self.now.saturating_since(Time::ZERO + spec.offset);
            let periods = elapsed.checked_div_duration(spec.period).unwrap_or(0) + 1;
            next_release = Time::ZERO + spec.offset + spec.period * periods;
        }
        self.tasks.push(TaskState {
            spec,
            next_release,
            active: true,
            overrun: None,
            jobs_released: 0,
            misses: 0,
            truncations: 0,
        });
        TaskRef(self.tasks.len() - 1)
    }

    /// Activates or deactivates a task. Deactivation discards its pending
    /// jobs (the quarantine path).
    pub fn set_active(&mut self, task: TaskRef, active: bool) {
        let t = &mut self.tasks[task.0];
        t.active = active;
        if !active {
            self.jobs.retain(|j| j.task != task.0);
        } else {
            // Re-align the next release to the task's period grid.
            let spec = &t.spec;
            if t.next_release < self.now {
                let elapsed = self.now.saturating_since(Time::ZERO + spec.offset);
                let periods = elapsed.checked_div_duration(spec.period).unwrap_or(0) + 1;
                t.next_release = Time::ZERO + spec.offset + spec.period * periods;
            }
        }
    }

    /// Deactivates all tasks of a component (quarantine support).
    pub fn deactivate_component(&mut self, component: ComponentId) {
        let ids: Vec<usize> = self
            .tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.spec.component == component)
            .map(|(i, _)| i)
            .collect();
        for i in ids {
            self.set_active(TaskRef(i), false);
        }
    }

    /// Injects an execution-time overrun: the next `jobs` releases of `task`
    /// execute for `factor × wcet` (fault/attack scripting).
    pub fn inject_overrun(&mut self, task: TaskRef, factor: f64, jobs: u64) {
        self.tasks[task.0].overrun = Some((factor, jobs));
    }

    /// Current scheduler time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Drains completed job records.
    pub fn take_records(&mut self) -> Vec<JobRecord> {
        std::mem::take(&mut self.records)
    }

    /// Drains completed job records into `buf`, reusing its capacity.
    ///
    /// `buf` is cleared and swapped with the internal record buffer, so a
    /// caller polling every control period ping-pongs two buffers and the
    /// steady-state drain performs no heap allocation (unlike
    /// [`Scheduler::take_records`], which leaves an empty `Vec` behind and
    /// forces the next period's records to reallocate).
    pub fn drain_records_into(&mut self, buf: &mut Vec<JobRecord>) {
        buf.clear();
        std::mem::swap(&mut self.records, buf);
    }

    /// Deadline misses of a task so far.
    pub fn misses(&self, task: TaskRef) -> u64 {
        self.tasks[task.0].misses
    }

    /// Budget truncations of a task so far.
    pub fn truncations(&self, task: TaskRef) -> u64 {
        self.tasks[task.0].truncations
    }

    /// Jobs released for a task so far.
    pub fn jobs_released(&self, task: TaskRef) -> u64 {
        self.tasks[task.0].jobs_released
    }

    /// Utilization since the last call to this method, and resets the
    /// window.
    pub fn take_utilization(&mut self) -> f64 {
        let window = self.now.saturating_since(self.window_start).as_secs_f64();
        let u = if window > 0.0 {
            (self.busy_ns / 1e9) / window
        } else {
            0.0
        };
        self.busy_ns = 0.0;
        self.window_start = self.now;
        u.min(1.0)
    }

    fn release_due_jobs(&mut self) {
        for (i, t) in self.tasks.iter_mut().enumerate() {
            if !t.active {
                continue;
            }
            while t.next_release <= self.now {
                let release = t.next_release;
                t.next_release += t.spec.period;
                t.jobs_released += 1;
                let frac = if let Some((factor, left)) = t.overrun {
                    if left > 1 {
                        t.overrun = Some((factor, left - 1));
                    } else {
                        t.overrun = None;
                    }
                    factor
                } else if t.spec.exec_frac_min == t.spec.exec_frac_max {
                    t.spec.exec_frac_min
                } else {
                    self.rng.uniform(t.spec.exec_frac_min, t.spec.exec_frac_max)
                };
                let exec_nominal = t.spec.wcet.mul_f64(frac);
                self.jobs.push(ActiveJob {
                    task: i,
                    release,
                    deadline_at: release + t.spec.deadline,
                    remaining_ns: exec_nominal.as_nanos() as f64,
                    budget_ns: t.spec.budget.map(|b| b.as_nanos() as f64),
                    exec_nominal,
                    exec_wall_ns: 0.0,
                    seq: {
                        let s = self.next_seq;
                        self.next_seq += 1;
                        s
                    },
                });
            }
        }
    }

    fn runnable_job(&self) -> Option<usize> {
        self.jobs
            .iter()
            .enumerate()
            .filter(|(_, j)| j.release <= self.now)
            .min_by_key(|(_, j)| (self.tasks[j.task].spec.priority, j.release, j.seq))
            .map(|(i, _)| i)
    }

    fn next_release_time(&self) -> Option<Time> {
        self.tasks
            .iter()
            .filter(|t| t.active)
            .map(|t| t.next_release)
            .min()
    }

    fn finish_job(&mut self, idx: usize, truncated: bool) {
        let job = self.jobs.remove(idx);
        let t = &mut self.tasks[job.task];
        let deadline_met = self.now <= job.deadline_at;
        if !deadline_met {
            t.misses += 1;
        }
        if truncated {
            t.truncations += 1;
        }
        self.records.push(JobRecord {
            task: TaskRef(job.task),
            name: t.spec.name.clone(),
            component: t.spec.component,
            release: job.release,
            finish: self.now,
            response: self.now.saturating_since(job.release),
            exec_wall: Duration::from_nanos(job.exec_wall_ns.round() as u64),
            exec_nominal: job.exec_nominal,
            deadline_met,
            truncated,
        });
    }

    /// Advances the scheduler to `to` with a constant PE speed factor for
    /// the segment (`1.0` = nominal; larger = slower; `INFINITY` = PE down,
    /// nothing executes but releases still accumulate).
    ///
    /// # Panics
    /// Panics if `to` is in the past or `speed_factor <= 0`.
    pub fn advance(&mut self, to: Time, speed_factor: f64) {
        assert!(to >= self.now, "cannot advance into the past");
        assert!(speed_factor > 0.0, "speed factor must be positive");
        loop {
            self.release_due_jobs();
            let next_rel = self.next_release_time().unwrap_or(Time::MAX);
            let run = self.runnable_job();
            let Some(run_idx) = run else {
                // Idle until the next release or the segment end.
                let t_next = next_rel.min(to);
                if t_next <= self.now {
                    if self.now >= to {
                        return;
                    }
                    self.now = t_next.max(self.now);
                    continue;
                }
                self.now = t_next;
                if self.now >= to {
                    return;
                }
                continue;
            };
            if speed_factor.is_infinite() {
                // PE down: time passes, no progress.
                self.now = next_rel.min(to);
                if self.now >= to {
                    return;
                }
                continue;
            }
            // Wall time until the running job completes or hits its budget.
            let job = &self.jobs[run_idx];
            let work_ns = match (self.enforcement, job.budget_ns) {
                (BudgetEnforcement::Truncate, Some(b)) => job.remaining_ns.min(b),
                _ => job.remaining_ns,
            };
            let wall_ns = (work_ns * speed_factor).ceil().max(1.0);
            let event_at = self.now + Duration::from_nanos(wall_ns as u64);
            let t_next = event_at.min(next_rel).min(to);
            // Execute the segment [now, t_next).
            let dt_ns = t_next.saturating_since(self.now).as_nanos() as f64;
            let progress = dt_ns / speed_factor;
            {
                let job = &mut self.jobs[run_idx];
                job.remaining_ns = (job.remaining_ns - progress).max(0.0);
                if let Some(b) = &mut job.budget_ns {
                    *b = (*b - progress).max(0.0);
                }
                job.exec_wall_ns += dt_ns;
            }
            self.busy_ns += dt_ns;
            self.now = t_next;
            let job = &self.jobs[run_idx];
            if job.remaining_ns < 0.5 {
                self.finish_job(run_idx, false);
            } else if matches!(self.enforcement, BudgetEnforcement::Truncate)
                && job.budget_ns.is_some_and(|b| b < 0.5)
            {
                self.finish_job(run_idx, true);
            }
            if self.now >= to {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    fn spec(name: &str, period_ms: u64, wcet_ms: u64, prio: u32) -> TaskSpec {
        TaskSpec::periodic(
            name,
            ComponentId(0),
            ms(period_ms),
            ms(wcet_ms),
            Priority(prio),
        )
        .with_exec_fraction(1.0, 1.0)
    }

    #[test]
    fn single_task_runs_periodically() {
        let mut s = Scheduler::new(1);
        let t = s.add_task(spec("a", 10, 2, 0));
        s.advance(Time::from_millis(100), 1.0);
        let recs = s.take_records();
        assert_eq!(recs.len(), 10);
        for r in &recs {
            assert_eq!(r.response, ms(2));
            assert!(r.deadline_met);
        }
        assert_eq!(s.jobs_released(t), 10);
        assert_eq!(s.misses(t), 0);
    }

    #[test]
    fn preemption_matches_analysis_example() {
        // Same set as the timing crate's classic example: C=(1,2,3),
        // P=(4,6,12). Worst-case responses 1, 3, 10 occur at the critical
        // instant t=0.
        let mut s = Scheduler::new(1);
        s.add_task(spec("a", 4, 1, 0));
        s.add_task(spec("b", 6, 2, 1));
        s.add_task(spec("c", 12, 3, 2));
        s.advance(Time::from_millis(12), 1.0);
        let recs = s.take_records();
        let first = |n: &str| {
            recs.iter()
                .find(|r| r.name == n && r.release == Time::ZERO)
                .unwrap()
                .response
        };
        assert_eq!(first("a"), ms(1));
        assert_eq!(first("b"), ms(3));
        assert_eq!(first("c"), ms(10));
    }

    #[test]
    fn slowdown_causes_deadline_misses() {
        let mut s = Scheduler::new(1);
        let t = s.add_task(spec("ctl", 10, 6, 0));
        s.advance(Time::from_millis(50), 1.0);
        assert_eq!(s.misses(t), 0);
        // 2x slowdown: 12 ms execution on a 10 ms period — permanent overload.
        s.advance(Time::from_millis(150), 2.0);
        assert!(s.misses(t) > 0);
    }

    #[test]
    fn budget_truncation_contains_overrun() {
        let mut s = Scheduler::new(1);
        let hog = s.add_task(spec("hog", 10, 2, 0).with_budget(ms(3)));
        let victim = s.add_task(spec("victim", 10, 5, 1));
        // The hog misbehaves: executes 5x its WCET for 5 jobs.
        s.inject_overrun(hog, 5.0, 5);
        s.advance(Time::from_millis(100), 1.0);
        // Budget caps the hog at 3 ms, so the victim (5 ms at prio 1) still
        // fits in each 10 ms period.
        assert_eq!(s.misses(victim), 0, "victim protected by enforcement");
        assert_eq!(s.truncations(hog), 5);
    }

    #[test]
    fn report_only_lets_overrun_harm_victim() {
        let mut s = Scheduler::new(1);
        s.set_enforcement(BudgetEnforcement::ReportOnly);
        let hog = s.add_task(spec("hog", 10, 2, 0).with_budget(ms(3)));
        let victim = s.add_task(spec("victim", 10, 5, 1));
        s.inject_overrun(hog, 5.0, 5);
        s.advance(Time::from_millis(100), 1.0);
        assert!(s.misses(victim) > 0, "no enforcement, victim suffers");
        assert_eq!(s.truncations(hog), 0);
    }

    #[test]
    fn deactivation_stops_releases_and_discards_jobs() {
        let mut s = Scheduler::new(1);
        let t = s.add_task(spec("a", 10, 2, 0));
        s.advance(Time::from_millis(25), 1.0);
        s.set_active(t, false);
        s.advance(Time::from_millis(100), 1.0);
        let count = s.jobs_released(t);
        assert_eq!(count, 3); // releases at 0, 10, 20 only
        s.set_active(t, true);
        s.advance(Time::from_millis(130), 1.0);
        assert!(s.jobs_released(t) > count);
    }

    #[test]
    fn infinite_speed_factor_stalls_execution() {
        let mut s = Scheduler::new(1);
        let t = s.add_task(spec("a", 10, 2, 0));
        s.advance(Time::from_millis(50), f64::INFINITY);
        assert_eq!(s.take_records().len(), 0);
        assert_eq!(s.jobs_released(t), 5);
    }

    #[test]
    fn utilization_accounting() {
        let mut s = Scheduler::new(1);
        s.add_task(spec("a", 10, 4, 0));
        s.advance(Time::from_millis(100), 1.0);
        let u = s.take_utilization();
        assert!((u - 0.4).abs() < 0.01, "utilization {u}");
        // Window resets.
        s.advance(Time::from_millis(110), 1.0);
        let u2 = s.take_utilization();
        assert!((u2 - 0.4).abs() < 0.05, "utilization {u2}");
    }

    #[test]
    fn stochastic_execution_within_bounds() {
        let mut s = Scheduler::new(7);
        let spec = TaskSpec::periodic("a", ComponentId(0), ms(10), ms(4), Priority(0))
            .with_exec_fraction(0.5, 1.0);
        s.add_task(spec);
        s.advance(Time::from_secs(1), 1.0);
        let recs = s.take_records();
        assert_eq!(recs.len(), 100);
        for r in &recs {
            assert!(r.exec_nominal >= ms(2) && r.exec_nominal <= ms(4));
        }
        // Not all identical.
        assert!(recs.iter().any(|r| r.exec_nominal != recs[0].exec_nominal));
    }

    #[test]
    fn mid_run_task_addition_does_not_burst_past_releases() {
        let mut s = Scheduler::new(1);
        s.add_task(spec("a", 10, 1, 0));
        s.advance(Time::from_millis(500), 1.0);
        s.take_records();
        // A task added at t=500ms must not release 50 back-jobs: its first
        // release aligns to the next grid point (510ms), giving releases at
        // 510..=590 within the advanced window.
        let late = s.add_task(spec("late", 10, 1, 1));
        s.advance(Time::from_millis(600), 1.0);
        assert_eq!(s.jobs_released(late), 9);
        assert_eq!(s.misses(late), 0);
    }

    #[test]
    fn component_deactivation() {
        let mut s = Scheduler::new(1);
        let a = s.add_task(TaskSpec::periodic(
            "a",
            ComponentId(7),
            ms(10),
            ms(1),
            Priority(0),
        ));
        let b = s.add_task(TaskSpec::periodic(
            "b",
            ComponentId(8),
            ms(10),
            ms(1),
            Priority(1),
        ));
        s.deactivate_component(ComponentId(7));
        s.advance(Time::from_millis(50), 1.0);
        assert_eq!(s.jobs_released(a), 0);
        assert!(s.jobs_released(b) > 0);
    }
}
