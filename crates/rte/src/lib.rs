//! # saav-rte — microkernel-style run-time environment
//!
//! The execution domain of the CCC architecture (Sec. II-B of Schlatow et
//! al., DATE 2017): application components hosted in isolated execution
//! domains (VMs) on a component RTE with strong isolation, fine-grained
//! capability-based access control, fixed-priority preemptive scheduling and
//! run-time budget enforcement.
//!
//! * [`component`] — components, micro-server services, VMs.
//! * [`access`] — capability grant table plus the audited access log the
//!   intrusion-detection monitor consumes.
//! * [`sched`] — preemptive fixed-priority scheduler with per-job budgets,
//!   speed-factor coupling to the hardware layer and fault injection.
//! * [`rte`] — the facade: installation, sessions, quarantine, atomic
//!   reconfiguration with validation-before-mutation semantics.
//!
//! ```
//! use saav_rte::component::{ComponentSpec, VmId};
//! use saav_rte::rte::Rte;
//! use saav_sim::time::Time;
//!
//! # fn main() -> Result<(), saav_rte::rte::RteError> {
//! let mut rte = Rte::new(42, 1024);
//! let radar = rte.install(ComponentSpec::new("radar", VmId(0)).provides("sensor.radar"))?;
//! let acc = rte.install(ComponentSpec::new("acc", VmId(0)).requires("sensor.radar"))?;
//! rte.grant(acc, "sensor.radar");
//! let session = rte.open_session(acc, "sensor.radar", Time::ZERO)?;
//! rte.call(session, Time::ZERO)?;
//! # let _ = radar;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod access;
pub mod component;
pub mod rte;
pub mod sched;

pub use access::{AccessControl, AccessEvent};
pub use component::{ComponentId, ComponentSpec, ComponentState, ServiceName, VmId};
pub use rte::{Configuration, Rte, RteError, SessionId};
pub use sched::{BudgetEnforcement, JobRecord, Priority, Scheduler, TaskRef, TaskSpec};
