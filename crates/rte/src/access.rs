//! Capability-based access control and the access event log.
//!
//! Following the principle of least privilege, a component may only open a
//! session to a service if an explicit grant exists. Every access — granted
//! or denied — is appended to an access log that the security monitor
//! ([`saav-monitor`]'s access monitor) consumes for intrusion detection, as
//! described in Sec. II-B and Sec. V of the paper.
//!
//! [`saav-monitor`]: https://docs.rs/saav-monitor

use std::collections::HashSet;

use saav_sim::time::Time;

use crate::component::{ComponentId, ServiceName};

/// One entry in the access log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessEvent {
    /// When the access happened.
    pub at: Time,
    /// The requesting component.
    pub client: ComponentId,
    /// The service addressed.
    pub service: ServiceName,
    /// Whether the capability check allowed it.
    pub allowed: bool,
}

/// Grant table plus audit log.
#[derive(Debug, Clone, Default)]
pub struct AccessControl {
    grants: HashSet<(ComponentId, ServiceName)>,
    log: Vec<AccessEvent>,
}

impl AccessControl {
    /// Creates an empty table (everything denied).
    pub fn new() -> Self {
        AccessControl::default()
    }

    /// Grants `client` the capability to use `service`.
    pub fn grant(&mut self, client: ComponentId, service: impl Into<ServiceName>) {
        self.grants.insert((client, service.into()));
    }

    /// Revokes a capability; returns whether it existed.
    pub fn revoke(&mut self, client: ComponentId, service: &ServiceName) -> bool {
        self.grants.remove(&(client, service.clone()))
    }

    /// Revokes every capability held by `client`.
    pub fn revoke_all(&mut self, client: ComponentId) {
        self.grants.retain(|(c, _)| *c != client);
    }

    /// Pure check without logging.
    pub fn is_granted(&self, client: ComponentId, service: &ServiceName) -> bool {
        self.grants.contains(&(client, service.clone()))
    }

    /// Checks and records an access attempt; returns whether it is allowed.
    pub fn check(&mut self, at: Time, client: ComponentId, service: &ServiceName) -> bool {
        let allowed = self.is_granted(client, service);
        self.log.push(AccessEvent {
            at,
            client,
            service: service.clone(),
            allowed,
        });
        allowed
    }

    /// Records a use of an already-open session (message-level accounting
    /// for the communication monitor).
    pub fn record_use(&mut self, at: Time, client: ComponentId, service: &ServiceName) {
        self.log.push(AccessEvent {
            at,
            client,
            service: service.clone(),
            allowed: true,
        });
    }

    /// The full access log.
    pub fn log(&self) -> &[AccessEvent] {
        &self.log
    }

    /// Drains the access log (monitors call this once per sampling period).
    pub fn drain_log(&mut self) -> Vec<AccessEvent> {
        std::mem::take(&mut self.log)
    }

    /// Number of grants currently in force.
    pub fn grant_count(&self) -> usize {
        self.grants.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn svc(s: &str) -> ServiceName {
        ServiceName::new(s)
    }

    #[test]
    fn default_deny() {
        let mut ac = AccessControl::new();
        assert!(!ac.check(Time::ZERO, ComponentId(0), &svc("x")));
        assert_eq!(ac.log().len(), 1);
        assert!(!ac.log()[0].allowed);
    }

    #[test]
    fn grant_allows_and_revoke_denies() {
        let mut ac = AccessControl::new();
        let c = ComponentId(1);
        ac.grant(c, "sensor.radar");
        assert!(ac.check(Time::ZERO, c, &svc("sensor.radar")));
        assert!(ac.revoke(c, &svc("sensor.radar")));
        assert!(!ac.check(Time::ZERO, c, &svc("sensor.radar")));
        assert!(!ac.revoke(c, &svc("sensor.radar")), "already revoked");
    }

    #[test]
    fn grants_are_per_component() {
        let mut ac = AccessControl::new();
        ac.grant(ComponentId(1), "s");
        assert!(ac.is_granted(ComponentId(1), &svc("s")));
        assert!(!ac.is_granted(ComponentId(2), &svc("s")));
    }

    #[test]
    fn revoke_all_clears_component() {
        let mut ac = AccessControl::new();
        ac.grant(ComponentId(1), "a");
        ac.grant(ComponentId(1), "b");
        ac.grant(ComponentId(2), "a");
        ac.revoke_all(ComponentId(1));
        assert!(!ac.is_granted(ComponentId(1), &svc("a")));
        assert!(!ac.is_granted(ComponentId(1), &svc("b")));
        assert!(ac.is_granted(ComponentId(2), &svc("a")));
        assert_eq!(ac.grant_count(), 1);
    }

    #[test]
    fn drain_log_empties() {
        let mut ac = AccessControl::new();
        ac.grant(ComponentId(0), "s");
        ac.record_use(Time::from_secs(1), ComponentId(0), &svc("s"));
        ac.record_use(Time::from_secs(2), ComponentId(0), &svc("s"));
        let events = ac.drain_log();
        assert_eq!(events.len(), 2);
        assert!(ac.log().is_empty());
    }
}
