//! Per-signal quantizers: continuous samples to discrete bin indices.
//!
//! Learned abnormality models work over a discrete state space (Kanapram et
//! al.'s feature-state DBNs), so each continuous signal is first mapped to
//! one of a small number of bins. Two binnings are supported: **uniform**
//! (equal-width bins over the observed range) and **quantile** (equal-mass
//! bins, so dense regions of the nominal distribution get finer
//! resolution). Both are fitted from nominal data only.

/// How bin edges are derived from the training values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Binning {
    /// Equal-width bins over `[min, max]` of the training values.
    Uniform,
    /// Equal-mass bins at the training-value quantiles (duplicate edges
    /// collapse, so heavily repeated values can yield fewer bins).
    Quantile,
}

/// A fitted scalar quantizer: strictly increasing edges defining half-open
/// bins `[e_i, e_{i+1})`; values outside the fitted range clamp to the edge
/// bins.
#[derive(Debug, Clone, PartialEq)]
pub struct Quantizer {
    edges: Vec<f64>,
}

/// Minimum half-width used when a signal is (near-)constant in the training
/// data, so the quantizer still has a non-degenerate range and excursions
/// away from the constant land in an edge bin.
const DEGENERATE_PAD: f64 = 1e-3;

/// Fraction of the observed span added on each side of a fitted range
/// ([`Quantizer::fit`]): unseen nominal runs wobble slightly past the
/// training min/max, and without slack that wobble would count as novelty.
pub const RANGE_PAD_FRAC: f64 = 0.10;

impl Quantizer {
    /// Equal-width bins over `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `hi <= lo`, or either bound is not finite.
    pub fn uniform(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "quantizer needs at least one bin");
        assert!(lo.is_finite() && hi.is_finite(), "non-finite bounds");
        assert!(hi > lo, "quantizer range must be non-empty");
        let edges = (0..=bins)
            .map(|i| lo + (hi - lo) * i as f64 / bins as f64)
            .collect();
        Quantizer { edges }
    }

    /// Equal-mass bins at the quantiles of `values`. Duplicate edges are
    /// collapsed, so the resulting bin count may be smaller than requested.
    ///
    /// # Panics
    /// Panics if `bins == 0`, `values` is empty, or any value is not finite.
    pub fn quantile(values: &[f64], bins: usize) -> Self {
        assert!(bins > 0, "quantizer needs at least one bin");
        assert!(!values.is_empty(), "cannot fit a quantizer to no data");
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-finite training value"));
        let n = sorted.len();
        let mut edges: Vec<f64> = Vec::with_capacity(bins + 1);
        for i in 0..=bins {
            // Linear index into the sorted sample for the i/bins quantile.
            let idx = ((i * (n - 1)) as f64 / bins as f64).round() as usize;
            let e = sorted[idx.min(n - 1)];
            if edges.last().is_none_or(|&last| e > last) {
                edges.push(e);
            }
        }
        if edges.len() < 2 {
            // All training values identical: fall back to a padded range.
            let v = edges[0];
            let pad = DEGENERATE_PAD.max(v.abs() * 1e-3);
            return Quantizer::uniform(v - pad, v + pad, bins);
        }
        Quantizer { edges }
    }

    /// Fits a quantizer to the training values with the requested binning.
    /// The fitted range is widened by [`RANGE_PAD_FRAC`] of the observed
    /// span on each side, so nominal noise from runs *outside* the
    /// training set does not immediately step out of range (which would
    /// register as novelty); near-constant signals get a small padded
    /// range instead of a zero-width one.
    ///
    /// # Panics
    /// Panics if `bins == 0`, `values` is empty, or any value is not finite.
    pub fn fit(values: &[f64], bins: usize, binning: Binning) -> Self {
        assert!(!values.is_empty(), "cannot fit a quantizer to no data");
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            lo.is_finite() && hi.is_finite(),
            "non-finite training value"
        );
        if hi - lo < f64::EPSILON * hi.abs().max(1.0) {
            let pad = DEGENERATE_PAD.max(lo.abs() * 1e-3);
            return Quantizer::uniform(lo - pad, hi + pad, bins);
        }
        let pad = RANGE_PAD_FRAC * (hi - lo);
        match binning {
            Binning::Uniform => Quantizer::uniform(lo - pad, hi + pad, bins),
            Binning::Quantile => {
                let mut q = Quantizer::quantile(values, bins);
                // Widen only the outer edges; interior quantiles stay put.
                q.edges[0] -= pad;
                let last = q.edges.len() - 1;
                q.edges[last] += pad;
                q
            }
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.edges.len() - 1
    }

    /// The fitted range `[lo, hi]`.
    pub fn range(&self) -> (f64, f64) {
        (self.edges[0], *self.edges.last().expect("≥ 2 edges"))
    }

    /// Maps a value to its bin index; out-of-range values clamp to the
    /// first/last bin.
    pub fn bin(&self, v: f64) -> usize {
        if v < self.edges[0] {
            return 0;
        }
        let last = self.bins() - 1;
        if v >= *self.edges.last().expect("≥ 2 edges") {
            return last;
        }
        // partition_point: first edge strictly greater than v, minus one.
        self.edges.partition_point(|&e| e <= v) - 1
    }

    /// A representative value for a bin — the midpoint of its edges, which
    /// always quantizes back into the same bin (property-tested).
    ///
    /// # Panics
    /// Panics if `bin` is out of range.
    pub fn representative(&self, bin: usize) -> f64 {
        assert!(bin < self.bins(), "bin out of range");
        0.5 * (self.edges[bin] + self.edges[bin + 1])
    }

    /// The *continuous* bin index of a value: `b + frac` inside bin `b`,
    /// extrapolated with the edge-bin width outside the fitted range (so
    /// it can be negative or exceed [`Self::bins`]). [`Self::bin`] clamps;
    /// this does not — it is what makes far-out-of-range excursions
    /// proportionally novel even though they quantize to an edge bin.
    pub fn continuous_index(&self, v: f64) -> f64 {
        let n = self.edges.len();
        if v < self.edges[0] {
            let w = self.edges[1] - self.edges[0];
            return (v - self.edges[0]) / w;
        }
        let last = self.edges[n - 1];
        if v >= last {
            let w = last - self.edges[n - 2];
            return self.bins() as f64 + (v - last) / w;
        }
        let b = self.bin(v);
        b as f64 + (v - self.edges[b]) / (self.edges[b + 1] - self.edges[b])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_bins_partition_the_range() {
        let q = Quantizer::uniform(0.0, 10.0, 5);
        assert_eq!(q.bins(), 5);
        assert_eq!(q.bin(-1.0), 0);
        assert_eq!(q.bin(0.0), 0);
        assert_eq!(q.bin(1.99), 0);
        assert_eq!(q.bin(2.0), 1);
        assert_eq!(q.bin(9.99), 4);
        assert_eq!(q.bin(10.0), 4);
        assert_eq!(q.bin(100.0), 4);
    }

    #[test]
    fn quantile_bins_follow_mass() {
        // 90 values near 0, 10 near 100: quantile edges crowd the dense part.
        let mut values: Vec<f64> = (0..90).map(|i| i as f64 / 100.0).collect();
        values.extend((0..10).map(|i| 100.0 + i as f64));
        let q = Quantizer::quantile(&values, 4);
        assert!(q.bins() >= 2);
        // The dense region spans several bins; the sparse tail only one.
        assert!(q.bin(0.85) > q.bin(0.05));
        assert_eq!(q.bin(109.0), q.bins() - 1);
    }

    #[test]
    fn constant_signal_gets_padded_range() {
        let q = Quantizer::fit(&[2.5; 40], 8, Binning::Uniform);
        let (lo, hi) = q.range();
        assert!(lo < 2.5 && hi > 2.5);
        // The constant sits in an interior bin; excursions hit the edges.
        let nominal = q.bin(2.5);
        assert!(nominal > 0 && nominal < q.bins() - 1);
        assert_eq!(q.bin(0.0), 0);
        assert_eq!(q.bin(5.0), q.bins() - 1);
    }

    #[test]
    fn continuous_index_extends_past_the_range() {
        let q = Quantizer::uniform(0.0, 8.0, 8); // bin width 1
        assert!((q.continuous_index(3.5) - 3.5).abs() < 1e-12);
        assert!((q.continuous_index(-2.0) - -2.0).abs() < 1e-12);
        assert!((q.continuous_index(12.0) - 12.0).abs() < 1e-12);
        // The clamped bin saturates where the continuous index keeps going.
        assert_eq!(q.bin(12.0), 7);
        assert_eq!(q.bin(-2.0), 0);
    }

    #[test]
    fn representative_round_trips() {
        let values: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin() * 10.0).collect();
        for binning in [Binning::Uniform, Binning::Quantile] {
            let q = Quantizer::fit(&values, 8, binning);
            for b in 0..q.bins() {
                assert_eq!(q.bin(q.representative(b)), b, "{binning:?} bin {b}");
            }
        }
    }
}
