//! Multi-signal traces captured from nominal runs — the training data of
//! the learned self-awareness models.
//!
//! A [`SignalTrace`] is the learn-side view of one simulation run: a fixed
//! set of named signals sampled at a common rate (the fleet runner samples
//! at 1 Hz), stored as one sample vector per instant. Traces are pure data;
//! the capture side lives with the fleet runner, the consumption side in
//! [`crate::SelfAwarenessModel::train`].

use saav_sim::series::Series;

/// One captured multi-signal trace: `samples[t][k]` is signal `k` at
/// sample instant `t`.
#[derive(Debug, Clone, PartialEq)]
pub struct SignalTrace {
    signals: Vec<String>,
    samples: Vec<Vec<f64>>,
}

impl SignalTrace {
    /// Creates a trace from explicit sample rows.
    ///
    /// # Panics
    /// Panics if any row's width differs from the signal count.
    pub fn new(signals: Vec<String>, samples: Vec<Vec<f64>>) -> Self {
        for row in &samples {
            assert_eq!(row.len(), signals.len(), "ragged sample row");
        }
        SignalTrace { signals, samples }
    }

    /// Builds a trace by zipping equally-sampled [`Series`] — the shape the
    /// scenario runner records. The trace is truncated to the shortest
    /// series so partially recorded runs still produce rectangular data.
    pub fn from_series(named: &[(&str, &Series)]) -> Self {
        let signals: Vec<String> = named.iter().map(|(n, _)| (*n).to_string()).collect();
        let columns: Vec<Vec<f64>> = named.iter().map(|(_, s)| s.values().collect()).collect();
        let len = columns.iter().map(Vec::len).min().unwrap_or(0);
        let samples = (0..len)
            .map(|t| columns.iter().map(|c| c[t]).collect())
            .collect();
        SignalTrace { signals, samples }
    }

    /// The signal names, in column order.
    pub fn signals(&self) -> &[String] {
        &self.signals
    }

    /// Number of sample instants.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the trace has no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The sample rows, in time order.
    pub fn samples(&self) -> &[Vec<f64>] {
        &self.samples
    }

    /// All values of signal column `k`, in time order.
    pub fn column(&self, k: usize) -> impl Iterator<Item = f64> + '_ {
        self.samples.iter().map(move |row| row[k])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saav_sim::time::Time;

    #[test]
    fn from_series_zips_and_truncates() {
        let a: Series = (0..5).map(|i| (Time::from_secs(i), i as f64)).collect();
        let b: Series = (0..3)
            .map(|i| (Time::from_secs(i), 10.0 + i as f64))
            .collect();
        let t = SignalTrace::from_series(&[("a", &a), ("b", &b)]);
        assert_eq!(t.signals(), ["a".to_string(), "b".to_string()]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.samples()[2], vec![2.0, 12.0]);
        assert_eq!(t.column(1).collect::<Vec<_>>(), vec![10.0, 11.0, 12.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_are_rejected() {
        let _ = SignalTrace::new(vec!["a".into()], vec![vec![1.0], vec![1.0, 2.0]]);
    }
}
