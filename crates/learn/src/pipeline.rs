//! The learn-then-monitor pipeline: training, calibration and the trained
//! [`SelfAwarenessModel`].
//!
//! Training consumes nominal [`SignalTrace`]s (captured by fleet batch
//! runs of the baseline scenario family), fits one [`Quantizer`] per
//! signal, clusters the joint quantized vectors into a
//! [`StateVocabulary`], and estimates a Laplace-smoothed
//! [`TransitionModel`] over the resulting state sequences. Calibration
//! scores nominal traces through the same arithmetic the online scorer
//! uses and sets the abnormality threshold to the maximum nominal score
//! plus a margin — so the calibration set is false-positive-free by
//! construction.

use crate::quantize::{Binning, Quantizer};
use crate::scorer::OnlineScorer;
use crate::trace::SignalTrace;
use crate::transitions::TransitionModel;
use crate::vocab::StateVocabulary;

/// Training/scoring hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LearnConfig {
    /// Bins per signal quantizer.
    pub bins: usize,
    /// How bin edges are derived from training values.
    pub binning: Binning,
    /// Maximum vocabulary size (most frequent joint states survive).
    pub max_states: usize,
    /// Sliding-window length (samples) of the abnormality score.
    pub window: usize,
    /// Margin added to the maximum nominal score when calibrating the
    /// threshold.
    pub margin: f64,
    /// Weight of the novelty term (L1 bin distance to the nearest
    /// vocabulary state) relative to the transition surprise.
    pub novelty_weight: f64,
}

impl Default for LearnConfig {
    fn default() -> Self {
        LearnConfig {
            bins: 8,
            binning: Binning::Uniform,
            max_states: 64,
            window: 5,
            margin: 2.0,
            novelty_weight: 1.0,
        }
    }
}

/// Why training was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrainError {
    /// No traces were provided.
    NoTraces,
    /// A trace had no samples.
    EmptyTrace,
    /// Traces disagree on their signal set.
    SignalMismatch {
        /// Signals of the first trace.
        expected: Vec<String>,
        /// Signals of the offending trace.
        got: Vec<String>,
    },
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::NoTraces => f.write_str("no training traces"),
            TrainError::EmptyTrace => f.write_str("a training trace has no samples"),
            TrainError::SignalMismatch { expected, got } => {
                write!(f, "signal mismatch: expected {expected:?}, got {got:?}")
            }
        }
    }
}

impl std::error::Error for TrainError {}

/// A trained self-awareness model: quantizers, vocabulary, transition
/// model and the calibrated abnormality threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct SelfAwarenessModel {
    signals: Vec<String>,
    quantizers: Vec<Quantizer>,
    vocab: StateVocabulary,
    transitions: TransitionModel,
    threshold: f64,
    config: LearnConfig,
}

impl SelfAwarenessModel {
    /// Trains a model from nominal traces and calibrates the threshold on
    /// them. Training is deterministic: the same traces and config always
    /// yield a bit-identical model (property-tested).
    pub fn train(traces: &[SignalTrace], config: LearnConfig) -> Result<Self, TrainError> {
        if traces.is_empty() {
            return Err(TrainError::NoTraces);
        }
        let signals = traces[0].signals().to_vec();
        for t in traces {
            if t.is_empty() {
                return Err(TrainError::EmptyTrace);
            }
            if t.signals() != signals.as_slice() {
                return Err(TrainError::SignalMismatch {
                    expected: signals.clone(),
                    got: t.signals().to_vec(),
                });
            }
        }
        // One quantizer per signal over the pooled training values.
        let quantizers: Vec<Quantizer> = (0..signals.len())
            .map(|k| {
                let values: Vec<f64> = traces.iter().flat_map(|t| t.column(k)).collect();
                Quantizer::fit(&values, config.bins, config.binning)
            })
            .collect();
        // Joint quantized vectors, per trace (traces never concatenate:
        // the last state of one run does not transition into the next).
        let quantized: Vec<Vec<Vec<u16>>> = traces
            .iter()
            .map(|t| {
                t.samples()
                    .iter()
                    .map(|row| {
                        row.iter()
                            .zip(&quantizers)
                            .map(|(&v, q)| q.bin(v) as u16)
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let all: Vec<Vec<u16>> = quantized.iter().flatten().cloned().collect();
        let vocab = StateVocabulary::build(&all, config.max_states);
        let mut transitions = TransitionModel::new(vocab.len());
        for trace in &quantized {
            let seq: Vec<usize> = trace.iter().map(|q| vocab.encode(q).0).collect();
            transitions.observe_sequence(&seq);
        }
        let mut model = SelfAwarenessModel {
            signals,
            quantizers,
            vocab,
            transitions,
            threshold: f64::INFINITY,
            config,
        };
        model.threshold = 0.0;
        model.calibrate(traces);
        Ok(model)
    }

    /// Raises the threshold so every given nominal trace scores strictly
    /// below it (maximum windowed score plus the configured margin). Never
    /// lowers an already calibrated threshold.
    pub fn calibrate(&mut self, traces: &[SignalTrace]) {
        for t in traces {
            let max = self.score_trace(t);
            self.threshold = self.threshold.max(max + self.config.margin);
        }
    }

    /// The maximum windowed abnormality score over a whole trace — the
    /// exact arithmetic of the online scorer, replayed offline.
    pub fn score_trace(&self, trace: &SignalTrace) -> f64 {
        let mut scorer = OnlineScorer::new(self.clone());
        let mut max = 0.0f64;
        for row in trace.samples() {
            max = max.max(scorer.score_only(row));
        }
        max
    }

    /// A fresh online scorer over this model (per-run state: window and
    /// previous state).
    pub fn scorer(&self) -> OnlineScorer {
        OnlineScorer::new(self.clone())
    }

    /// The signal names the model was trained on, in ingestion order.
    pub fn signals(&self) -> &[String] {
        &self.signals
    }

    /// The per-signal quantizers, in signal order.
    pub fn quantizers(&self) -> &[Quantizer] {
        &self.quantizers
    }

    /// The state vocabulary.
    pub fn vocab(&self) -> &StateVocabulary {
        &self.vocab
    }

    /// The transition model.
    pub fn transitions(&self) -> &TransitionModel {
        &self.transitions
    }

    /// The calibrated abnormality threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The training configuration.
    pub fn config(&self) -> &LearnConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic nominal trace: two signals around fixed operating
    /// points with small deterministic wobble.
    fn nominal_trace(phase: f64, len: usize) -> SignalTrace {
        let samples = (0..len)
            .map(|i| {
                let x = i as f64 + phase;
                vec![22.0 + 0.2 * (x * 0.7).sin(), 1.0 - 0.02 * (x * 0.3).cos()]
            })
            .collect();
        SignalTrace::new(vec!["speed".into(), "ability".into()], samples)
    }

    fn nominal_set() -> Vec<SignalTrace> {
        (0..4)
            .map(|i| nominal_trace(i as f64 * 13.0, 120))
            .collect()
    }

    #[test]
    fn training_calibrates_a_false_positive_free_threshold() {
        let traces = nominal_set();
        let model = SelfAwarenessModel::train(&traces, LearnConfig::default()).unwrap();
        assert!(model.threshold().is_finite());
        for t in &traces {
            assert!(model.score_trace(t) < model.threshold());
        }
    }

    #[test]
    fn deviations_score_above_nominal() {
        let traces = nominal_set();
        let model = SelfAwarenessModel::train(&traces, LearnConfig::default()).unwrap();
        // An abnormal trace: speed collapses, ability degrades.
        let abnormal = SignalTrace::new(
            vec!["speed".into(), "ability".into()],
            (0..60)
                .map(|i| {
                    if i < 20 {
                        vec![22.0, 1.0]
                    } else {
                        vec![5.0, 0.5]
                    }
                })
                .collect(),
        );
        assert!(model.score_trace(&abnormal) > model.threshold());
    }

    #[test]
    fn train_rejects_bad_input() {
        assert_eq!(
            SelfAwarenessModel::train(&[], LearnConfig::default()),
            Err(TrainError::NoTraces)
        );
        let empty = SignalTrace::new(vec!["a".into()], vec![]);
        assert_eq!(
            SelfAwarenessModel::train(&[empty], LearnConfig::default()),
            Err(TrainError::EmptyTrace)
        );
        let a = SignalTrace::new(vec!["a".into()], vec![vec![1.0]]);
        let b = SignalTrace::new(vec!["b".into()], vec![vec![1.0]]);
        assert!(matches!(
            SelfAwarenessModel::train(&[a, b], LearnConfig::default()),
            Err(TrainError::SignalMismatch { .. })
        ));
    }

    #[test]
    fn training_is_deterministic() {
        let traces = nominal_set();
        let a = SelfAwarenessModel::train(&traces, LearnConfig::default()).unwrap();
        let b = SelfAwarenessModel::train(&traces, LearnConfig::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn quantile_binning_also_trains() {
        let cfg = LearnConfig {
            binning: Binning::Quantile,
            ..LearnConfig::default()
        };
        let model = SelfAwarenessModel::train(&nominal_set(), cfg).unwrap();
        assert!(!model.vocab().is_empty());
        assert!(model.threshold().is_finite());
    }
}
