//! The Laplace-smoothed Markov/DBN transition model over vocabulary
//! states.
//!
//! This is the dynamic part of the learned self-awareness model (the
//! discrete analogue of Kanapram et al.'s dynamic Bayesian abnormality
//! models): `P(s_{t+1} | s_t)` estimated from nominal state sequences with
//! add-one smoothing, so unseen transitions have small but non-zero
//! probability and their **surprise** `-ln P` is large but finite.

/// Transition counts and smoothed probabilities over `n` states.
#[derive(Debug, Clone, PartialEq)]
pub struct TransitionModel {
    n: usize,
    counts: Vec<u64>,
    totals: Vec<u64>,
}

impl TransitionModel {
    /// Creates an empty model over `n` states.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "transition model needs at least one state");
        TransitionModel {
            n,
            counts: vec![0; n * n],
            totals: vec![0; n],
        }
    }

    /// Number of states.
    pub fn states(&self) -> usize {
        self.n
    }

    /// Records one observed transition `from → to`.
    ///
    /// # Panics
    /// Panics if either state id is out of range.
    pub fn observe(&mut self, from: usize, to: usize) {
        assert!(from < self.n && to < self.n, "state id out of range");
        self.counts[from * self.n + to] += 1;
        self.totals[from] += 1;
    }

    /// Records every consecutive pair of a state sequence.
    pub fn observe_sequence(&mut self, seq: &[usize]) {
        for w in seq.windows(2) {
            self.observe(w[0], w[1]);
        }
    }

    /// Raw count of `from → to`.
    pub fn count(&self, from: usize, to: usize) -> u64 {
        self.counts[from * self.n + to]
    }

    /// Laplace-smoothed transition probability
    /// `(c + 1) / (total(from) + n)` — strictly positive and summing to one
    /// over `to`.
    pub fn prob(&self, from: usize, to: usize) -> f64 {
        assert!(from < self.n && to < self.n, "state id out of range");
        (self.counts[from * self.n + to] as f64 + 1.0) / (self.totals[from] as f64 + self.n as f64)
    }

    /// Surprise of a transition: `-ln P(to | from)`. Always finite thanks
    /// to smoothing.
    pub fn surprise(&self, from: usize, to: usize) -> f64 {
        -self.prob(from, to).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probabilities_are_smoothed_and_normalized() {
        let mut m = TransitionModel::new(3);
        m.observe_sequence(&[0, 1, 1, 2, 0, 1]);
        // Row 0: two transitions to 1, none elsewhere.
        assert_eq!(m.count(0, 1), 2);
        assert!((m.prob(0, 1) - 3.0 / 5.0).abs() < 1e-12);
        assert!((m.prob(0, 0) - 1.0 / 5.0).abs() < 1e-12);
        let row_sum: f64 = (0..3).map(|to| m.prob(0, to)).sum();
        assert!((row_sum - 1.0).abs() < 1e-12);
        // A never-observed row is uniform.
        assert!((m.prob(2, 1) - 1.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn surprise_orders_by_rarity() {
        let mut m = TransitionModel::new(2);
        for _ in 0..50 {
            m.observe(0, 0);
        }
        m.observe(0, 1);
        assert!(m.surprise(0, 1) > m.surprise(0, 0));
        assert!(m.surprise(0, 1).is_finite());
    }
}
