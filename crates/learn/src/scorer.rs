//! The online abnormality scorer: live signal samples in, windowed
//! surprise scores and [`AnomalyKind::ModelDeviation`] anomalies out.
//!
//! Each ingested sample is quantized, matched to the nearest vocabulary
//! state, and scored as `transition surprise + novelty_weight · novelty`,
//! where novelty is the L1 distance between the sample's *continuous* bin
//! indices and the matched state's bin centres — so excursions far beyond
//! the trained range stay proportionally novel even though they quantize
//! to an edge bin. The reported score is the mean over a sliding window.
//! An anomaly is emitted on the **rising edge** of a threshold crossing
//! (hysteresis), so a sustained deviation raises one problem into the
//! coordinator instead of one per sample.

use std::collections::VecDeque;

use saav_monitor::anomaly::{Anomaly, AnomalyKind};
use saav_sim::time::Time;

use crate::pipeline::SelfAwarenessModel;

/// The per-sample output of [`OnlineScorer::ingest`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreReport {
    /// Windowed abnormality score after this sample.
    pub score: f64,
    /// The matched vocabulary state.
    pub state: usize,
    /// L1 distance (in continuous bin units, capped per signal) from the
    /// observation to the matched state's bin centres.
    pub novelty: f64,
    /// The anomaly, if this sample crossed the threshold (rising edge).
    pub anomaly: Option<Anomaly>,
}

/// Online scoring state over a trained [`SelfAwarenessModel`].
#[derive(Debug, Clone)]
pub struct OnlineScorer {
    model: SelfAwarenessModel,
    window: VecDeque<f64>,
    prev: Option<usize>,
    above: bool,
}

impl OnlineScorer {
    /// Creates a scorer with empty per-run state.
    pub fn new(model: SelfAwarenessModel) -> Self {
        OnlineScorer {
            model,
            window: VecDeque::new(),
            prev: None,
            above: false,
        }
    }

    /// The model being scored against.
    pub fn model(&self) -> &SelfAwarenessModel {
        &self.model
    }

    /// Advances the scorer by one sample and returns the windowed score —
    /// shared by [`Self::ingest`] and the offline
    /// [`SelfAwarenessModel::score_trace`], so online and replay scoring
    /// are the same arithmetic by construction.
    ///
    /// # Panics
    /// Panics if the sample width differs from the model's signal count.
    pub fn score_only(&mut self, sample: &[f64]) -> f64 {
        let (score, _, _) = self.step(sample);
        score
    }

    /// Ingests one live sample; returns the score, matched state and —
    /// on a rising threshold crossing — a
    /// [`AnomalyKind::ModelDeviation`] anomaly stamped with `at`.
    ///
    /// # Panics
    /// Panics if the sample width differs from the model's signal count.
    pub fn ingest(&mut self, at: Time, sample: &[f64]) -> ScoreReport {
        let (score, state, novelty) = self.step(sample);
        let threshold = self.model.threshold();
        let crossed = score > threshold && !self.above;
        self.above = score > threshold;
        let anomaly = crossed.then(|| {
            Anomaly::new(
                at,
                "learned_model",
                AnomalyKind::ModelDeviation,
                format!("windowed surprise {score:.2} > threshold {threshold:.2} (state {state}, novelty {novelty:.1})"),
            )
        });
        ScoreReport {
            score,
            state,
            novelty,
            anomaly,
        }
    }

    fn step(&mut self, sample: &[f64]) -> (f64, usize, f64) {
        let quantizers = self.model.quantizers();
        assert_eq!(
            sample.len(),
            quantizers.len(),
            "sample width does not match the trained signal set"
        );
        let q: Vec<u16> = sample
            .iter()
            .zip(quantizers)
            .map(|(&v, qz)| qz.bin(v) as u16)
            .collect();
        let (state, _) = self.model.vocab().encode(&q);
        // Novelty against the matched state's bin centres, in continuous
        // bin units so out-of-range overshoot keeps counting; each signal's
        // contribution is capped so a single runaway signal cannot make the
        // score unbounded.
        let centroid = self.model.vocab().state(state);
        let novelty: f64 = sample
            .iter()
            .zip(quantizers)
            .zip(centroid)
            .map(|((&v, qz), &bin)| {
                let cap = 2.0 * qz.bins() as f64;
                (qz.continuous_index(v) - (f64::from(bin) + 0.5))
                    .abs()
                    .min(cap)
            })
            .sum();
        let surprise = match self.prev {
            Some(prev) => self.model.transitions().surprise(prev, state),
            None => 0.0,
        };
        let step_score = surprise + self.model.config().novelty_weight * novelty;
        self.prev = Some(state);
        self.window.push_back(step_score);
        if self.window.len() > self.model.config().window {
            self.window.pop_front();
        }
        let score = self.window.iter().sum::<f64>() / self.window.len() as f64;
        (score, state, novelty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::LearnConfig;
    use crate::trace::SignalTrace;

    fn trained() -> SelfAwarenessModel {
        let traces: Vec<SignalTrace> = (0..3)
            .map(|p| {
                SignalTrace::new(
                    vec!["x".into(), "y".into()],
                    (0..100)
                        .map(|i| {
                            let t = (i + p * 31) as f64;
                            vec![10.0 + (t * 0.5).sin(), 2.0 + 0.1 * (t * 0.2).cos()]
                        })
                        .collect(),
                )
            })
            .collect();
        SelfAwarenessModel::train(&traces, LearnConfig::default()).unwrap()
    }

    #[test]
    fn nominal_stream_never_fires() {
        let model = trained();
        let mut scorer = model.scorer();
        for i in 0..100 {
            let t = i as f64;
            let report = scorer.ingest(
                Time::from_secs(i),
                &[10.0 + (t * 0.5).sin(), 2.0 + 0.1 * (t * 0.2).cos()],
            );
            assert!(report.anomaly.is_none(), "sample {i}: {report:?}");
        }
    }

    #[test]
    fn deviation_fires_once_per_excursion() {
        let model = trained();
        let mut scorer = model.scorer();
        let mut fired = Vec::new();
        for i in 0..30u64 {
            let t = i as f64;
            let sample = if i >= 10 {
                [40.0, 0.1] // far outside the nominal envelope
            } else {
                [10.0 + (t * 0.5).sin(), 2.0 + 0.1 * (t * 0.2).cos()]
            };
            let report = scorer.ingest(Time::from_secs(i), &sample);
            if let Some(a) = &report.anomaly {
                assert_eq!(a.kind, AnomalyKind::ModelDeviation);
                assert_eq!(a.at, Time::from_secs(i));
                fired.push(i);
            }
        }
        // One rising edge for the single sustained excursion, and only
        // after the excursion began (hysteresis holds it down afterwards).
        assert_eq!(fired.len(), 1, "firings at {fired:?}");
        assert!(fired[0] >= 10);
    }

    #[test]
    fn online_matches_offline_replay() {
        let model = trained();
        let trace = SignalTrace::new(
            vec!["x".into(), "y".into()],
            (0..50)
                .map(|i| vec![10.0 + (i as f64 * 0.5).sin(), 2.0])
                .collect(),
        );
        let mut scorer = model.scorer();
        let online_max = trace
            .samples()
            .iter()
            .enumerate()
            .map(|(i, row)| scorer.ingest(Time::from_secs(i as u64), row).score)
            .fold(0.0f64, f64::max);
        assert_eq!(online_max, model.score_trace(&trace));
    }
}
