//! The state vocabulary: joint quantized signal vectors clustered into a
//! bounded set of discrete states.
//!
//! Nominal operation visits only a small part of the joint bin space, so
//! the vocabulary is built by frequency: every distinct quantized vector
//! seen in training is a candidate, the `max_states` most frequent become
//! the vocabulary (ties broken by first appearance, so construction is
//! deterministic), and every other vector — training or live — maps to its
//! nearest vocabulary state under L1 distance in bin space. The L1
//! distance to the matched state is the **novelty** of an observation:
//! zero in nominal operation, growing as the vehicle leaves the learned
//! envelope.

use std::collections::HashMap;

/// A bounded vocabulary of joint quantized states.
#[derive(Debug, Clone, PartialEq)]
pub struct StateVocabulary {
    states: Vec<Vec<u16>>,
}

impl StateVocabulary {
    /// Builds the vocabulary from training vectors: distinct vectors ranked
    /// by frequency (first appearance breaks ties), truncated to
    /// `max_states`.
    ///
    /// # Panics
    /// Panics if `vectors` is empty, `max_states == 0`, or the vectors have
    /// inconsistent widths.
    pub fn build(vectors: &[Vec<u16>], max_states: usize) -> Self {
        assert!(
            !vectors.is_empty(),
            "cannot build a vocabulary from no data"
        );
        assert!(max_states > 0, "vocabulary needs at least one state");
        let width = vectors[0].len();
        let mut freq: HashMap<&[u16], (usize, usize)> = HashMap::new();
        for (i, v) in vectors.iter().enumerate() {
            assert_eq!(v.len(), width, "inconsistent state-vector width");
            let entry = freq.entry(v.as_slice()).or_insert((0, i));
            entry.0 += 1;
        }
        let mut ranked: Vec<(&[u16], (usize, usize))> = freq.into_iter().collect();
        // Most frequent first; first appearance breaks ties deterministically.
        ranked.sort_by(|a, b| b.1 .0.cmp(&a.1 .0).then(a.1 .1.cmp(&b.1 .1)));
        ranked.truncate(max_states);
        StateVocabulary {
            states: ranked.into_iter().map(|(v, _)| v.to_vec()).collect(),
        }
    }

    /// Number of vocabulary states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the vocabulary is empty (never true for a built vocabulary).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The bin vector of state `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn state(&self, id: usize) -> &[u16] {
        &self.states[id]
    }

    /// Maps a quantized vector to `(nearest state id, L1 distance)`. Ties
    /// resolve to the lowest id (the most frequent candidate), so encoding
    /// is deterministic.
    pub fn encode(&self, q: &[u16]) -> (usize, u32) {
        let mut best = (0usize, u32::MAX);
        for (id, s) in self.states.iter().enumerate() {
            let d: u32 = s
                .iter()
                .zip(q)
                .map(|(&a, &b)| (i32::from(a) - i32::from(b)).unsigned_abs())
                .sum();
            if d < best.1 {
                best = (id, d);
                if d == 0 {
                    break;
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequency_ranks_and_truncates() {
        let vectors = vec![
            vec![1, 1],
            vec![2, 2],
            vec![1, 1],
            vec![3, 3],
            vec![1, 1],
            vec![2, 2],
        ];
        let v = StateVocabulary::build(&vectors, 2);
        assert_eq!(v.len(), 2);
        assert_eq!(v.state(0), &[1, 1]);
        assert_eq!(v.state(1), &[2, 2]);
        // The evicted vector maps to its nearest survivor with distance 2.
        assert_eq!(v.encode(&[3, 3]), (1, 2));
    }

    #[test]
    fn encode_is_exact_for_vocabulary_members() {
        let vectors = vec![vec![0, 5, 2], vec![7, 1, 1]];
        let v = StateVocabulary::build(&vectors, 8);
        assert_eq!(v.encode(&[0, 5, 2]), (0, 0));
        assert_eq!(v.encode(&[7, 1, 1]), (1, 0));
        let (_, d) = v.encode(&[0, 5, 4]);
        assert_eq!(d, 2);
    }

    #[test]
    fn ties_break_by_first_appearance() {
        let vectors = vec![vec![4], vec![8]];
        let v = StateVocabulary::build(&vectors, 2);
        // [6] is equidistant from both; the earlier (lower-id) state wins.
        assert_eq!(v.encode(&[6]).0, 0);
    }
}
