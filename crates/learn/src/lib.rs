//! # saav-learn — learned self-awareness models
//!
//! The monitoring layer of Schlatow et al. (DATE 2017) detects deviations
//! against *hand-written* contracts (WCET budgets, value ranges, message
//! rates). This crate adds the next step the related work calls for —
//! self-awareness models **learned from nominal operation** (Ravanbakhsh
//! et al.; Kanapram et al.): train on traces of undisturbed driving, then
//! score live operation for abnormality.
//!
//! The pipeline, stage by stage:
//!
//! * [`trace`] — [`SignalTrace`]: multi-signal samples captured from fleet
//!   runs (the nominal-data generator is `saav_core::fleet::FleetRunner`).
//! * [`quantize`] — per-signal [`Quantizer`]s (uniform or quantile bins)
//!   fitted to nominal data.
//! * [`vocab`] — the [`StateVocabulary`]: joint quantized vectors
//!   clustered into a bounded discrete state set; the L1 distance to the
//!   matched state is the observation's *novelty*.
//! * [`transitions`] — the Laplace-smoothed Markov/DBN
//!   [`TransitionModel`] over vocabulary states.
//! * [`pipeline`] — [`SelfAwarenessModel::train`] wiring the stages
//!   together, plus threshold calibration (max nominal score + margin, so
//!   the calibration set is false-positive-free by construction).
//! * [`scorer`] — the [`OnlineScorer`]: live samples in, windowed
//!   surprise scores and `AnomalyKind::ModelDeviation` anomalies out,
//!   feeding the existing monitor → coordinator escalation path.
//!
//! ```
//! use saav_learn::{LearnConfig, SelfAwarenessModel, SignalTrace};
//! use saav_sim::time::Time;
//!
//! // Nominal operation: speed ~22 m/s, ability ~1.0.
//! let nominal: Vec<SignalTrace> = (0..3)
//!     .map(|p| SignalTrace::new(
//!         vec!["speed".into(), "ability".into()],
//!         (0..60).map(|i| {
//!             let t = (i + p * 17) as f64;
//!             vec![22.0 + 0.2 * (t * 0.7).sin(), 1.0 - 0.02 * (t * 0.3).cos()]
//!         }).collect(),
//!     ))
//!     .collect();
//! let model = SelfAwarenessModel::train(&nominal, LearnConfig::default()).unwrap();
//!
//! // Live scoring: nominal samples stay quiet, a deviation fires.
//! let mut scorer = model.scorer();
//! assert!(scorer.ingest(Time::from_secs(0), &[22.0, 1.0]).anomaly.is_none());
//! assert!(scorer.ingest(Time::from_secs(1), &[4.0, 0.4]).anomaly.is_some());
//! ```

#![warn(missing_docs)]

pub mod pipeline;
pub mod quantize;
pub mod scorer;
pub mod trace;
pub mod transitions;
pub mod vocab;

pub use pipeline::{LearnConfig, SelfAwarenessModel, TrainError};
pub use quantize::{Binning, Quantizer};
pub use scorer::{OnlineScorer, ScoreReport};
pub use trace::SignalTrace;
pub use transitions::TransitionModel;
pub use vocab::StateVocabulary;
