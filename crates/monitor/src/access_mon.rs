//! Communication/access monitoring for intrusion detection.
//!
//! Consumes the RTE's access log and detects two attack signatures the paper
//! discusses in its security example (Sec. V): outright capability
//! violations (denied attempts) and message-rate anomalies on otherwise
//! legitimate channels — the observable footprint of a compromised component
//! "governing rear braking".

use std::collections::HashMap;

use saav_sim::name::Name;
use saav_sim::time::{Duration, Time};

use crate::anomaly::{Anomaly, AnomalyKind};

/// One access observation (mirrors the RTE's log entry without depending on
/// the RTE crate).
#[derive(Debug, Clone)]
pub struct AccessObservation {
    /// When the access happened.
    pub at: Time,
    /// Requesting component (by name for report readability). Interned:
    /// the per-tick observation path clones names without allocating.
    pub client: Name,
    /// Service addressed.
    pub service: Name,
    /// Whether the capability check allowed it.
    pub allowed: bool,
}

#[derive(Debug, Clone, Default)]
struct ChannelState {
    /// Learned nominal rate (messages/s), if calibrated.
    nominal_rate: Option<f64>,
    /// Messages in the current window.
    window_count: u64,
    window_start: Option<Time>,
    flagged: bool,
}

/// The access monitor.
#[derive(Debug, Clone)]
pub struct AccessMonitor {
    channels: HashMap<(Name, Name), ChannelState>,
    window: Duration,
    /// Rate anomaly threshold: flagged when the windowed rate exceeds
    /// `nominal × factor`.
    rate_factor: f64,
}

impl AccessMonitor {
    /// Creates a monitor with the given rate window and anomaly factor.
    ///
    /// # Panics
    /// Panics if `window` is zero or `rate_factor <= 1`.
    pub fn new(window: Duration, rate_factor: f64) -> Self {
        assert!(!window.is_zero());
        assert!(rate_factor > 1.0);
        AccessMonitor {
            channels: HashMap::new(),
            window,
            rate_factor,
        }
    }

    /// A monitor with a 1-second window flagging 3× rate excursions.
    pub fn with_defaults() -> Self {
        AccessMonitor::new(Duration::from_secs(1), 3.0)
    }

    /// Declares the nominal message rate of a channel (from the contract).
    pub fn set_nominal_rate(
        &mut self,
        client: impl Into<Name>,
        service: impl Into<Name>,
        rate_per_sec: f64,
    ) {
        let state = self
            .channels
            .entry((client.into(), service.into()))
            .or_default();
        state.nominal_rate = Some(rate_per_sec.max(0.0));
    }

    /// Feeds one access observation.
    pub fn observe(&mut self, obs: &AccessObservation) -> Vec<Anomaly> {
        let mut out = Vec::new();
        if !obs.allowed {
            out.push(Anomaly::new(
                obs.at,
                obs.client.clone(),
                AnomalyKind::AccessViolation,
                format!("denied access to `{}`", obs.service),
            ));
            return out;
        }
        let key = (obs.client.clone(), obs.service.clone());
        let window = self.window;
        let factor = self.rate_factor;
        let state = self.channels.entry(key).or_default();
        match state.window_start {
            Some(start) if obs.at.saturating_since(start) < window => {
                state.window_count += 1;
            }
            _ => {
                state.window_start = Some(obs.at);
                state.window_count = 1;
                state.flagged = false;
            }
        }
        if let Some(nominal) = state.nominal_rate {
            let rate = state.window_count as f64 / window.as_secs_f64();
            if nominal > 0.0 && rate > nominal * factor && !state.flagged {
                state.flagged = true;
                out.push(Anomaly::new(
                    obs.at,
                    obs.client.clone(),
                    AnomalyKind::RateAnomaly,
                    format!("`{}` at {rate:.1}/s vs nominal {nominal:.1}/s", obs.service),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn allowed(at_ms: u64, client: &str, service: &str) -> AccessObservation {
        AccessObservation {
            at: Time::from_millis(at_ms),
            client: client.into(),
            service: service.into(),
            allowed: true,
        }
    }

    #[test]
    fn denial_is_immediate_violation() {
        let mut m = AccessMonitor::with_defaults();
        let a = m.observe(&AccessObservation {
            at: Time::ZERO,
            client: "attacker".into(),
            service: "actuator.brake".into(),
            allowed: false,
        });
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].kind, AnomalyKind::AccessViolation);
    }

    #[test]
    fn nominal_rate_passes() {
        let mut m = AccessMonitor::with_defaults();
        m.set_nominal_rate("acc", "actuator.brake", 100.0);
        // 100 msgs over 1 s: exactly nominal.
        for i in 0..100 {
            assert!(m
                .observe(&allowed(i * 10, "acc", "actuator.brake"))
                .is_empty());
        }
    }

    #[test]
    fn flooding_triggers_rate_anomaly_once_per_window() {
        let mut m = AccessMonitor::with_defaults();
        m.set_nominal_rate("brake_ctl", "actuator.brake", 100.0);
        let mut anomalies = Vec::new();
        // 1000 msgs in 500 ms: 10x nominal within one window.
        for i in 0..1000u64 {
            anomalies.extend(m.observe(&allowed(i / 2, "brake_ctl", "actuator.brake")));
        }
        assert_eq!(anomalies.len(), 1, "one flag per window");
        assert_eq!(anomalies[0].kind, AnomalyKind::RateAnomaly);
    }

    #[test]
    fn channels_are_independent() {
        let mut m = AccessMonitor::with_defaults();
        m.set_nominal_rate("a", "svc", 10.0);
        m.set_nominal_rate("b", "svc", 10_000.0);
        let mut anomalies = Vec::new();
        for i in 0..500u64 {
            anomalies.extend(m.observe(&allowed(i, "a", "svc")));
            anomalies.extend(m.observe(&allowed(i, "b", "svc")));
        }
        // Only channel a (nominal 10/s, actual ~1000/s) fires.
        assert_eq!(anomalies.len(), 1);
        assert_eq!(anomalies[0].subject, "a");
    }

    #[test]
    fn unprofiled_channel_never_rate_flags() {
        let mut m = AccessMonitor::with_defaults();
        for i in 0..2000u64 {
            assert!(m.observe(&allowed(i / 4, "x", "y")).is_empty());
        }
    }
}
