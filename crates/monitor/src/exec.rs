//! Execution-time and deadline monitoring (application monitor).
//!
//! Supervises job records from the RTE scheduler against the contracted
//! WCET/deadline, and maintains an observed execution-time profile that the
//! model domain can use to refine its models ("extract run-time metrics that
//! can be fed back into the model domain for optimization", Sec. II-B).

use std::collections::HashMap;

use saav_sim::name::Name;
use saav_sim::time::{Duration, Time};

use crate::anomaly::{Anomaly, AnomalyKind};

/// One observed job execution, decoupled from the RTE's record type.
#[derive(Debug, Clone)]
pub struct JobObservation {
    /// Completion time.
    pub at: Time,
    /// Task name. Interned so per-tick observations clone it without
    /// allocating.
    pub task: Name,
    /// Speed-normalized execution demand of the job.
    pub exec_nominal: Duration,
    /// Response time.
    pub response: Duration,
    /// Whether the deadline was met.
    pub deadline_met: bool,
}

/// Per-task observed execution statistics.
#[derive(Debug, Clone, Default)]
pub struct ExecProfile {
    /// Number of observed jobs.
    pub jobs: u64,
    /// Largest observed nominal execution time.
    pub max_exec: Duration,
    /// Largest observed response time.
    pub max_response: Duration,
    /// Accumulated deadline misses.
    pub misses: u64,
    /// Accumulated overruns (exec above contract WCET).
    pub overruns: u64,
}

/// The execution monitor.
#[derive(Debug, Clone, Default)]
pub struct ExecutionMonitor {
    contracts: HashMap<Name, Duration>,
    profiles: HashMap<Name, ExecProfile>,
}

impl ExecutionMonitor {
    /// Creates a monitor with no contracts.
    pub fn new() -> Self {
        ExecutionMonitor::default()
    }

    /// Registers the contracted WCET of a task.
    pub fn set_contract(&mut self, task: impl Into<Name>, wcet: Duration) {
        self.contracts.insert(task.into(), wcet);
    }

    /// Feeds one job observation; returns any detected anomalies.
    pub fn observe(&mut self, obs: &JobObservation) -> Vec<Anomaly> {
        let profile = self.profiles.entry(obs.task.clone()).or_default();
        profile.jobs += 1;
        profile.max_exec = profile.max_exec.max(obs.exec_nominal);
        profile.max_response = profile.max_response.max(obs.response);
        let mut anomalies = Vec::new();
        if let Some(&wcet) = self.contracts.get(obs.task.as_str()) {
            if obs.exec_nominal > wcet {
                profile.overruns += 1;
                anomalies.push(Anomaly::new(
                    obs.at,
                    obs.task.clone(),
                    AnomalyKind::ExecutionOverrun,
                    format!("exec {} > contract {}", obs.exec_nominal, wcet),
                ));
            }
        }
        if !obs.deadline_met {
            profile.misses += 1;
            anomalies.push(Anomaly::new(
                obs.at,
                obs.task.clone(),
                AnomalyKind::DeadlineMiss,
                format!("response {}", obs.response),
            ));
        }
        anomalies
    }

    /// The observed profile of a task, if any jobs were seen.
    pub fn profile(&self, task: &str) -> Option<&ExecProfile> {
        self.profiles.get(task)
    }

    /// Suggests a refined WCET from observations: the observed maximum plus
    /// a safety margin. Returns `None` before any observation.
    pub fn suggest_wcet(&self, task: &str, margin_factor: f64) -> Option<Duration> {
        let p = self.profiles.get(task)?;
        if p.jobs == 0 {
            return None;
        }
        Some(p.max_exec.mul_f64(margin_factor.max(1.0)))
    }

    /// Deadline-miss ratio of a task over all observed jobs.
    pub fn miss_ratio(&self, task: &str) -> f64 {
        self.profiles
            .get(task)
            .filter(|p| p.jobs > 0)
            .map_or(0.0, |p| p.misses as f64 / p.jobs as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(task: &str, exec_ms: u64, resp_ms: u64, met: bool) -> JobObservation {
        JobObservation {
            at: Time::from_millis(resp_ms),
            task: task.into(),
            exec_nominal: Duration::from_millis(exec_ms),
            response: Duration::from_millis(resp_ms),
            deadline_met: met,
        }
    }

    #[test]
    fn overrun_detected_against_contract() {
        let mut m = ExecutionMonitor::new();
        m.set_contract("ctl", Duration::from_millis(2));
        assert!(m.observe(&obs("ctl", 2, 3, true)).is_empty());
        let anomalies = m.observe(&obs("ctl", 3, 4, true));
        assert_eq!(anomalies.len(), 1);
        assert_eq!(anomalies[0].kind, AnomalyKind::ExecutionOverrun);
        assert_eq!(m.profile("ctl").unwrap().overruns, 1);
    }

    #[test]
    fn deadline_miss_detected_without_contract() {
        let mut m = ExecutionMonitor::new();
        let anomalies = m.observe(&obs("anything", 1, 20, false));
        assert_eq!(anomalies.len(), 1);
        assert_eq!(anomalies[0].kind, AnomalyKind::DeadlineMiss);
        assert!((m.miss_ratio("anything") - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn profile_tracks_maxima() {
        let mut m = ExecutionMonitor::new();
        m.observe(&obs("t", 1, 5, true));
        m.observe(&obs("t", 4, 6, true));
        m.observe(&obs("t", 2, 9, true));
        let p = m.profile("t").unwrap();
        assert_eq!(p.jobs, 3);
        assert_eq!(p.max_exec, Duration::from_millis(4));
        assert_eq!(p.max_response, Duration::from_millis(9));
    }

    #[test]
    fn wcet_refinement_applies_margin() {
        let mut m = ExecutionMonitor::new();
        m.observe(&obs("t", 4, 5, true));
        assert_eq!(m.suggest_wcet("t", 1.25), Some(Duration::from_millis(5)));
        // Margin below 1 is clamped: never suggest less than the observation.
        assert_eq!(m.suggest_wcet("t", 0.5), Some(Duration::from_millis(4)));
        assert_eq!(m.suggest_wcet("unknown", 1.2), None);
    }

    #[test]
    fn miss_ratio_accumulates() {
        let mut m = ExecutionMonitor::new();
        for i in 0..10 {
            m.observe(&obs("t", 1, 2, i % 5 != 0)); // 2 of 10 miss
        }
        assert!((m.miss_ratio("t") - 0.2).abs() < 1e-12);
        assert_eq!(m.miss_ratio("never-seen"), 0.0);
    }
}
