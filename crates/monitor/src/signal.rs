//! Signal monitors: heartbeat (SAFER baseline), boundary checks (RACE
//! baseline), plausibility and quality estimation.
//!
//! The paper contrasts richer self-awareness with two prior systems: SAFER
//! activates degradation only "if the heartbeat of a sensor goes missing"
//! and RACE limits failure detection to "a set of boundary checks". Both are
//! implemented here as baselines; [`PlausibilityMonitor`] and
//! [`QualityMonitor`] provide the finer-grained data-quality assessment the
//! paper calls for (Sec. IV).

use std::collections::VecDeque;

use saav_sim::name::Name;
use saav_sim::time::{Duration, Time};

use crate::anomaly::{Anomaly, AnomalyKind};

/// Heartbeat supervision: expects a beat at least every
/// `period × timeout_factor`.
///
/// This is the SAFER-style baseline detector.
#[derive(Debug, Clone)]
pub struct HeartbeatMonitor {
    subject: Name,
    period: Duration,
    timeout_factor: f64,
    last_beat: Option<Time>,
    lost: bool,
}

impl HeartbeatMonitor {
    /// Creates a monitor; detection triggers after `period × timeout_factor`
    /// without a beat.
    ///
    /// # Panics
    /// Panics if `period` is zero or `timeout_factor < 1`.
    pub fn new(subject: impl Into<Name>, period: Duration, timeout_factor: f64) -> Self {
        assert!(!period.is_zero());
        assert!(timeout_factor >= 1.0, "timeout factor below 1 is nonsense");
        HeartbeatMonitor {
            subject: subject.into(),
            period,
            timeout_factor,
            last_beat: None,
            lost: false,
        }
    }

    /// Records a heartbeat.
    pub fn beat(&mut self, at: Time) {
        self.last_beat = Some(at);
        self.lost = false;
    }

    /// Checks for heartbeat loss at time `now`. Emits one anomaly per loss
    /// episode (re-arms after the next beat).
    pub fn check(&mut self, now: Time) -> Option<Anomaly> {
        let reference = self.last_beat?;
        let timeout = self.period.mul_f64(self.timeout_factor);
        if !self.lost && now.saturating_since(reference) > timeout {
            self.lost = true;
            return Some(Anomaly::new(
                now,
                self.subject.clone(),
                AnomalyKind::HeartbeatLoss,
                format!("no beat for {}", now.saturating_since(reference)),
            ));
        }
        None
    }

    /// Whether the heartbeat is currently considered lost.
    pub fn is_lost(&self) -> bool {
        self.lost
    }
}

/// Static range check: the RACE-style baseline detector.
#[derive(Debug, Clone)]
pub struct BoundaryMonitor {
    subject: Name,
    min: f64,
    max: f64,
}

impl BoundaryMonitor {
    /// Creates a boundary monitor for values in `[min, max]`.
    ///
    /// # Panics
    /// Panics if `min > max`.
    pub fn new(subject: impl Into<Name>, min: f64, max: f64) -> Self {
        assert!(min <= max, "empty boundary range");
        BoundaryMonitor {
            subject: subject.into(),
            min,
            max,
        }
    }

    /// Checks one sample.
    pub fn observe(&self, at: Time, value: f64) -> Option<Anomaly> {
        if value < self.min || value > self.max {
            Some(Anomaly::new(
                at,
                self.subject.clone(),
                AnomalyKind::OutOfRange,
                format!("{value:.3} outside [{:.3}, {:.3}]", self.min, self.max),
            ))
        } else {
            None
        }
    }
}

/// Plausibility supervision: range, rate-of-change and stuck-at detection
/// over a sliding window.
#[derive(Debug, Clone)]
pub struct PlausibilityMonitor {
    subject: Name,
    min: f64,
    max: f64,
    /// Maximum plausible |dv/dt| in units per second.
    max_rate: f64,
    /// Samples for stuck-at detection.
    window: VecDeque<(Time, f64)>,
    window_len: usize,
    /// A signal is stuck when it stays within this band over a full window
    /// while `expect_variation` is set.
    stuck_band: f64,
    expect_variation: bool,
    last: Option<(Time, f64)>,
}

impl PlausibilityMonitor {
    /// Creates a plausibility monitor.
    ///
    /// # Panics
    /// Panics if `min > max` or `max_rate <= 0`.
    pub fn new(subject: impl Into<Name>, min: f64, max: f64, max_rate: f64) -> Self {
        assert!(min <= max);
        assert!(max_rate > 0.0);
        PlausibilityMonitor {
            subject: subject.into(),
            min,
            max,
            max_rate,
            window: VecDeque::new(),
            window_len: 50,
            stuck_band: 1e-9,
            expect_variation: false,
            last: None,
        }
    }

    /// Enables stuck-at detection: the signal is expected to vary by more
    /// than `band` over any `window_len` consecutive samples.
    pub fn expect_variation(mut self, band: f64, window_len: usize) -> Self {
        assert!(window_len >= 2);
        self.expect_variation = true;
        self.stuck_band = band.abs();
        self.window_len = window_len;
        self
    }

    /// Feeds one sample; returns all anomalies it triggers.
    pub fn observe(&mut self, at: Time, value: f64) -> Vec<Anomaly> {
        let mut out = Vec::new();
        if value < self.min || value > self.max {
            out.push(Anomaly::new(
                at,
                self.subject.clone(),
                AnomalyKind::OutOfRange,
                format!("{value:.3} outside [{:.3}, {:.3}]", self.min, self.max),
            ));
        }
        if let Some((t0, v0)) = self.last {
            let dt = at.saturating_since(t0).as_secs_f64();
            if dt > 0.0 {
                let rate = (value - v0).abs() / dt;
                if rate > self.max_rate {
                    out.push(Anomaly::new(
                        at,
                        self.subject.clone(),
                        AnomalyKind::ImplausibleRate,
                        format!("rate {rate:.3}/s > {:.3}/s", self.max_rate),
                    ));
                }
            }
        }
        self.last = Some((at, value));
        if self.expect_variation {
            self.window.push_back((at, value));
            while self.window.len() > self.window_len {
                self.window.pop_front();
            }
            if self.window.len() == self.window_len {
                let lo = self
                    .window
                    .iter()
                    .map(|&(_, v)| v)
                    .fold(f64::INFINITY, f64::min);
                let hi = self
                    .window
                    .iter()
                    .map(|&(_, v)| v)
                    .fold(f64::NEG_INFINITY, f64::max);
                if hi - lo <= self.stuck_band {
                    out.push(Anomaly::new(
                        at,
                        self.subject.clone(),
                        AnomalyKind::StuckSignal,
                        format!("variation {:.6} over {} samples", hi - lo, self.window_len),
                    ));
                    self.window.clear(); // re-arm
                }
            }
        }
        out
    }
}

/// Continuous signal-quality estimation in `[0, 1]` from sample validity and
/// noise, feeding the ability graph's performance metrics.
#[derive(Debug, Clone)]
pub struct QualityMonitor {
    subject: Name,
    window: VecDeque<(bool, f64)>,
    window_len: usize,
    /// Noise level (std dev) considered nominal (quality 1.0).
    nominal_noise: f64,
    /// Noise level at which quality reaches 0.
    max_noise: f64,
    threshold: f64,
    below: bool,
}

impl QualityMonitor {
    /// Creates a quality monitor.
    ///
    /// # Panics
    /// Panics unless `0 <= nominal_noise < max_noise` and
    /// `threshold ∈ [0, 1]`.
    pub fn new(
        subject: impl Into<Name>,
        nominal_noise: f64,
        max_noise: f64,
        threshold: f64,
    ) -> Self {
        assert!(nominal_noise >= 0.0 && nominal_noise < max_noise);
        assert!((0.0..=1.0).contains(&threshold));
        QualityMonitor {
            subject: subject.into(),
            window: VecDeque::new(),
            window_len: 50,
            nominal_noise,
            max_noise,
            threshold,
            below: false,
        }
    }

    /// Feeds one sample: `valid` is false for dropouts; `residual` is the
    /// deviation from a reference (e.g. innovation/prediction error).
    /// Returns an anomaly when quality crosses below the threshold.
    pub fn observe(&mut self, at: Time, valid: bool, residual: f64) -> Option<Anomaly> {
        self.window.push_back((valid, residual));
        while self.window.len() > self.window_len {
            self.window.pop_front();
        }
        let q = self.quality();
        if q < self.threshold && !self.below {
            self.below = true;
            return Some(Anomaly::new(
                at,
                self.subject.clone(),
                AnomalyKind::QualityDegraded,
                format!("quality {q:.2} < {:.2}", self.threshold),
            ));
        }
        if q >= self.threshold {
            self.below = false;
        }
        None
    }

    /// Current quality estimate in `[0, 1]`:
    /// `valid fraction × noise margin`.
    pub fn quality(&self) -> f64 {
        if self.window.is_empty() {
            return 1.0;
        }
        let n = self.window.len() as f64;
        let (valid_n, sum_sq) = self
            .window
            .iter()
            .filter(|(v, _)| *v)
            .fold((0usize, 0.0), |(c, s), &(_, r)| (c + 1, s + r * r));
        let valid_frac = valid_n as f64 / n;
        // With under two valid samples there is no noise evidence yet —
        // assume nominal rather than condemning a signal at startup. The
        // valid-fraction term still pulls quality down if everything drops
        // out.
        //
        // The error measure is the RMS residual, not the standard
        // deviation: a frozen (stuck-at) sensor produces residuals with
        // zero variance but growing bias, and only an RMS-style measure
        // sees that class of plausible-but-wrong failure.
        let noise = if valid_n < 2 {
            self.nominal_noise
        } else {
            (sum_sq / valid_n as f64).sqrt()
        };
        let noise_margin = 1.0
            - ((noise - self.nominal_noise) / (self.max_noise - self.nominal_noise))
                .clamp(0.0, 1.0);
        (valid_frac * noise_margin).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: u64) -> Time {
        Time::from_secs(v)
    }

    #[test]
    fn heartbeat_loss_and_rearm() {
        let mut m = HeartbeatMonitor::new("radar", Duration::from_millis(100), 3.0);
        assert!(m.check(s(10)).is_none(), "no beat yet, no reference");
        m.beat(Time::from_millis(0));
        assert!(m.check(Time::from_millis(200)).is_none());
        let a = m.check(Time::from_millis(301)).expect("loss detected");
        assert_eq!(a.kind, AnomalyKind::HeartbeatLoss);
        assert!(m.is_lost());
        // Only one anomaly per episode.
        assert!(m.check(Time::from_millis(400)).is_none());
        m.beat(Time::from_millis(500));
        assert!(!m.is_lost());
        assert!(m.check(Time::from_millis(900)).is_some(), "re-armed");
    }

    #[test]
    fn boundary_detects_only_range() {
        let m = BoundaryMonitor::new("speed", 0.0, 60.0);
        assert!(m.observe(s(1), 30.0).is_none());
        assert!(m.observe(s(1), -0.1).is_some());
        assert!(m.observe(s(1), 60.1).is_some());
        // Boundary check cannot see a plausible-but-wrong value — that is
        // exactly the RACE baseline's blind spot.
        assert!(m.observe(s(1), 59.9).is_none());
    }

    #[test]
    fn plausibility_detects_jump() {
        let mut m = PlausibilityMonitor::new("range", 0.0, 250.0, 50.0);
        assert!(m.observe(s(1), 100.0).is_empty());
        // 100 -> 90 over 1 s = 10/s: fine.
        assert!(m.observe(s(2), 90.0).is_empty());
        // 90 -> 20 over 1 s = 70/s: implausible.
        let a = m.observe(s(3), 20.0);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].kind, AnomalyKind::ImplausibleRate);
    }

    #[test]
    fn plausibility_detects_stuck_signal() {
        let mut m =
            PlausibilityMonitor::new("wheel", 0.0, 100.0, 1000.0).expect_variation(0.001, 10);
        let mut anomalies = Vec::new();
        for i in 0..10 {
            anomalies.extend(m.observe(Time::from_millis(i * 10), 42.0));
        }
        assert_eq!(anomalies.len(), 1);
        assert_eq!(anomalies[0].kind, AnomalyKind::StuckSignal);
    }

    #[test]
    fn varying_signal_not_stuck() {
        let mut m =
            PlausibilityMonitor::new("wheel", 0.0, 100.0, 1000.0).expect_variation(0.001, 10);
        for i in 0..50 {
            let v = 42.0 + (i as f64 * 0.1);
            assert!(m.observe(Time::from_millis(i * 10), v).is_empty());
        }
    }

    #[test]
    fn quality_degrades_with_dropouts() {
        let mut m = QualityMonitor::new("radar", 0.5, 5.0, 0.7);
        // Clean samples: quality stays high.
        for i in 0..50 {
            assert!(m.observe(Time::from_millis(i * 10), true, 0.0).is_none());
        }
        assert!(m.quality() > 0.9);
        // Half the samples drop out: quality sinks, anomaly fires once.
        let mut fired = 0;
        for i in 50..150 {
            if m.observe(Time::from_millis(i * 10), i % 2 == 0, 0.0)
                .is_some()
            {
                fired += 1;
            }
        }
        assert_eq!(fired, 1);
        assert!(m.quality() < 0.7, "quality {}", m.quality());
    }

    #[test]
    fn quality_degrades_with_noise() {
        let mut m = QualityMonitor::new("radar", 0.5, 5.0, 0.7);
        // Alternate residuals +-4: std dev 4, close to max noise.
        for i in 0..50 {
            let r = if i % 2 == 0 { 4.0 } else { -4.0 };
            m.observe(Time::from_millis(i * 10), true, r);
        }
        assert!(m.quality() < 0.3, "quality {}", m.quality());
    }
}
