//! Anomalies: the common output type of all monitors.

use std::fmt;

use saav_sim::name::Name;
use saav_sim::time::Time;

/// What kind of deviation a monitor detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnomalyKind {
    /// A job executed longer than its contracted WCET.
    ExecutionOverrun,
    /// A job finished after its deadline.
    DeadlineMiss,
    /// An expected heartbeat did not arrive in time.
    HeartbeatLoss,
    /// A value left its static boundary range.
    OutOfRange,
    /// A value changed faster than physically plausible.
    ImplausibleRate,
    /// A signal is frozen (stuck-at) while it should vary.
    StuckSignal,
    /// Signal quality dropped below its requirement.
    QualityDegraded,
    /// A capability check was violated (denied access attempt).
    AccessViolation,
    /// Message rate on a channel deviates strongly from its profile.
    RateAnomaly,
    /// Behaviour deviates from a *learned* model of nominal operation
    /// (windowed surprise above the calibrated threshold).
    ModelDeviation,
    /// A cooperating peer vehicle misbehaves: its broadcast claims
    /// repeatedly deviate from the negotiated agreement and its trust has
    /// collapsed (Byzantine platoon member).
    PeerMisbehavior,
}

impl fmt::Display for AnomalyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AnomalyKind::ExecutionOverrun => "execution overrun",
            AnomalyKind::DeadlineMiss => "deadline miss",
            AnomalyKind::HeartbeatLoss => "heartbeat loss",
            AnomalyKind::OutOfRange => "value out of range",
            AnomalyKind::ImplausibleRate => "implausible rate of change",
            AnomalyKind::StuckSignal => "stuck signal",
            AnomalyKind::QualityDegraded => "quality degraded",
            AnomalyKind::AccessViolation => "access violation",
            AnomalyKind::RateAnomaly => "message rate anomaly",
            AnomalyKind::ModelDeviation => "learned-model deviation",
            AnomalyKind::PeerMisbehavior => "peer misbehavior",
        };
        f.write_str(s)
    }
}

/// A detected deviation from modeled/expected behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct Anomaly {
    /// Detection instant.
    pub at: Time,
    /// The monitored entity (task, signal, channel, component). Interned:
    /// monitors hold their subject as a [`Name`] and raising an anomaly
    /// clones it with a reference-count bump, not a heap allocation.
    pub subject: Name,
    /// Deviation class.
    pub kind: AnomalyKind,
    /// Free-form detail for reports.
    pub detail: String,
}

impl Anomaly {
    /// Creates an anomaly.
    pub fn new(
        at: Time,
        subject: impl Into<Name>,
        kind: AnomalyKind,
        detail: impl Into<String>,
    ) -> Self {
        Anomaly {
            at,
            subject: subject.into(),
            kind,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for Anomaly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}: {} ({})",
            self.at, self.subject, self.kind, self.detail
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let a = Anomaly::new(
            Time::from_secs(3),
            "acc_ctl",
            AnomalyKind::DeadlineMiss,
            "response 12ms > 10ms",
        );
        let s = a.to_string();
        assert!(s.contains("acc_ctl"));
        assert!(s.contains("deadline miss"));
        assert!(s.contains("12ms"));
    }
}
