//! # saav-monitor — run-time monitoring for self-awareness
//!
//! The monitoring side of the CCC execution domain (Sec. II-B of Schlatow et
//! al., DATE 2017): application and platform monitors that (a) check that
//! implementations adhere to their modeled behaviour and (b) extract metrics
//! fed back to the model domain.
//!
//! * [`anomaly`] — the common deviation type all monitors emit.
//! * [`exec`] — execution-time/deadline supervision and WCET refinement.
//! * [`signal`] — heartbeat (SAFER baseline), boundary checks (RACE
//!   baseline), plausibility and signal-quality estimation.
//! * [`access_mon`] — capability-violation and message-rate intrusion
//!   detection over the RTE access log.
//! * [`metrics`] — the metric feedback bus toward the model domain.
//!
//! ```
//! use saav_monitor::signal::BoundaryMonitor;
//! use saav_sim::time::Time;
//!
//! let tire_pressure = BoundaryMonitor::new("tire.fl", 1.8, 3.2);
//! assert!(tire_pressure.observe(Time::ZERO, 2.4).is_none());
//! assert!(tire_pressure.observe(Time::ZERO, 1.2).is_some());
//! ```

#![warn(missing_docs)]

pub mod access_mon;
pub mod anomaly;
pub mod exec;
pub mod metrics;
pub mod signal;

pub use access_mon::{AccessMonitor, AccessObservation};
pub use anomaly::{Anomaly, AnomalyKind};
pub use exec::{ExecProfile, ExecutionMonitor, JobObservation};
pub use metrics::{Metric, MetricBus};
pub use signal::{BoundaryMonitor, HeartbeatMonitor, PlausibilityMonitor, QualityMonitor};
