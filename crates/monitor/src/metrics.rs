//! The metric feedback channel from the execution domain to the model
//! domain.
//!
//! Monitors publish numeric metrics here; the MCC (model domain) reads them
//! to refine its models — closing the loop Fig. 1 of the paper draws between
//! the monitors and the Multi-Change Controller ("metrics" arrow).

use std::collections::HashMap;

use saav_sim::time::Time;

/// One published metric sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Publication time.
    pub at: Time,
    /// Publishing subsystem, e.g. `"monitor.exec"`.
    pub source: String,
    /// Metric name, e.g. `"acc_ctl.max_exec_ms"`.
    pub name: String,
    /// Value.
    pub value: f64,
}

/// An in-memory metric bus with last-value semantics plus history.
#[derive(Debug, Clone, Default)]
pub struct MetricBus {
    history: Vec<Metric>,
    latest: HashMap<String, Metric>,
}

impl MetricBus {
    /// Creates an empty bus.
    pub fn new() -> Self {
        MetricBus::default()
    }

    /// Publishes a metric sample.
    pub fn publish(
        &mut self,
        at: Time,
        source: impl Into<String>,
        name: impl Into<String>,
        value: f64,
    ) {
        let m = Metric {
            at,
            source: source.into(),
            name: name.into(),
            value,
        };
        self.latest.insert(m.name.clone(), m.clone());
        self.history.push(m);
    }

    /// The most recent value of a metric.
    pub fn latest(&self, name: &str) -> Option<f64> {
        self.latest.get(name).map(|m| m.value)
    }

    /// The most recent full sample of a metric.
    pub fn latest_sample(&self, name: &str) -> Option<&Metric> {
        self.latest.get(name)
    }

    /// All samples of a metric, in publication order.
    pub fn history_of<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Metric> {
        self.history.iter().filter(move |m| m.name == name)
    }

    /// Number of samples published.
    pub fn len(&self) -> usize {
        self.history.len()
    }

    /// Whether no metric has been published.
    pub fn is_empty(&self) -> bool {
        self.history.is_empty()
    }

    /// Names with at least one sample, sorted.
    pub fn names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.latest.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_and_query() {
        let mut bus = MetricBus::new();
        bus.publish(Time::from_secs(1), "monitor.exec", "ctl.max_ms", 2.5);
        bus.publish(Time::from_secs(2), "monitor.exec", "ctl.max_ms", 3.0);
        bus.publish(Time::from_secs(2), "monitor.quality", "radar.q", 0.9);
        assert_eq!(bus.latest("ctl.max_ms"), Some(3.0));
        assert_eq!(bus.latest("radar.q"), Some(0.9));
        assert_eq!(bus.latest("nope"), None);
        assert_eq!(bus.history_of("ctl.max_ms").count(), 2);
        assert_eq!(bus.len(), 3);
        assert_eq!(bus.names(), vec!["ctl.max_ms", "radar.q"]);
        assert_eq!(
            bus.latest_sample("radar.q").unwrap().source,
            "monitor.quality"
        );
    }
}
