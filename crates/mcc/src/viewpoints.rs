//! Viewpoint analyses: the MCC's acceptance tests.
//!
//! Sec. II-A: *"Viewpoint-specific analyses can be implemented as separate
//! entities in the MCC"* and *"formal analyses that a) can guide the
//! (mapping) decisions and b) work as acceptance tests"*. Each viewpoint
//! examines a [`CandidateConfig`] against the [`PlatformModel`] and returns
//! a [`Verdict`]; the integration process accepts a change only when every
//! viewpoint passes.

use saav_timing::event_model::EventModel;
use saav_timing::task::{Priority, Task};
use saav_timing::{CanAnalysis, CpuAnalysis};

use crate::contract::{Asil, TrustDomain};
use crate::model::{CandidateConfig, PlatformModel};

/// Outcome of one viewpoint check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verdict {
    /// Viewpoint name.
    pub viewpoint: &'static str,
    /// Whether the candidate passes.
    pub passed: bool,
    /// Human-readable findings (violations or notes).
    pub findings: Vec<String>,
}

impl Verdict {
    fn pass(viewpoint: &'static str) -> Self {
        Verdict {
            viewpoint,
            passed: true,
            findings: Vec::new(),
        }
    }

    fn fail(viewpoint: &'static str, findings: Vec<String>) -> Self {
        Verdict {
            viewpoint,
            passed: false,
            findings,
        }
    }
}

/// A viewpoint analysis run by the MCC.
pub trait Viewpoint: Send + Sync {
    /// Short identifier used in reports.
    fn name(&self) -> &'static str;
    /// Checks a candidate configuration.
    fn check(&self, candidate: &CandidateConfig, platform: &PlatformModel) -> Verdict;
}

/// Timing viewpoint: worst-case response-time analysis of every PE and
/// network (the paper's example acceptance test).
#[derive(Debug, Default)]
pub struct TimingViewpoint;

impl Viewpoint for TimingViewpoint {
    fn name(&self) -> &'static str {
        "timing"
    }

    fn check(&self, candidate: &CandidateConfig, platform: &PlatformModel) -> Verdict {
        let mut findings = Vec::new();
        for (pe_idx, pe) in platform.pes.iter().enumerate() {
            let mut cpu = CpuAnalysis::new();
            for comp in &candidate.components {
                if candidate.mapping.get(&comp.name) != Some(&pe_idx) {
                    continue;
                }
                for t in &comp.tasks {
                    cpu.add_task(Task::new(
                        format!("{}.{}", comp.name, t.name),
                        t.wcet,
                        Priority(t.priority),
                        EventModel::periodic(t.period),
                        t.deadline,
                    ));
                }
            }
            if cpu.tasks().is_empty() {
                continue;
            }
            match cpu.analyze() {
                Ok(result) => {
                    for name in result.violations() {
                        let r = result.response(name).expect("violating task exists");
                        findings.push(format!(
                            "{}: task {} WCRT {} exceeds deadline {}",
                            pe.name, name, r.wcrt, r.deadline
                        ));
                    }
                }
                Err(e) => findings.push(format!("{}: {}", pe.name, e)),
            }
        }
        for (net_idx, net) in platform.networks.iter().enumerate() {
            let mut can = CanAnalysis::with_bitrate(net.bitrate_bps);
            let bit_ns = 1_000_000_000u64 / net.bitrate_bps as u64;
            for comp in &candidate.components {
                for f in &comp.frames {
                    let key = format!("{}.{}", comp.name, f.name);
                    if candidate.frame_mapping.get(&key) != Some(&net_idx) {
                        continue;
                    }
                    // Worst-case bits for a standard frame with stuffing.
                    let bits = 8 * f.payload as u64 + 47 + (34 + 8 * f.payload as u64 - 1) / 4;
                    can.add_frame(Task::new(
                        key.clone(),
                        saav_sim::time::Duration::from_nanos(bits * bit_ns),
                        Priority(f.can_id),
                        EventModel::periodic(f.period),
                        f.period,
                    ));
                }
            }
            if can.frames().is_empty() {
                continue;
            }
            match can.analyze() {
                Ok(result) => {
                    for name in result.violations() {
                        findings.push(format!("{}: frame {} misses deadline", net.name, name));
                    }
                }
                Err(e) => findings.push(format!("{}: {}", net.name, e)),
            }
        }
        if findings.is_empty() {
            Verdict::pass(self.name())
        } else {
            Verdict::fail(self.name(), findings)
        }
    }
}

/// Safety viewpoint: every required service must be backed by providers of
/// sufficient effective ASIL — either one provider at the requirer's level,
/// or two independent providers at the decomposed level (redundancy).
#[derive(Debug, Default)]
pub struct SafetyViewpoint;

impl Viewpoint for SafetyViewpoint {
    fn name(&self) -> &'static str {
        "safety"
    }

    fn check(&self, candidate: &CandidateConfig, _platform: &PlatformModel) -> Verdict {
        let mut findings = Vec::new();
        for comp in &candidate.components {
            let required_level = comp.effective_asil();
            if required_level == Asil::Qm {
                continue;
            }
            for req in &comp.requires {
                let providers = candidate.providers_of(&req.name);
                if providers.is_empty() {
                    findings.push(format!(
                        "{}: required service `{}` has no provider",
                        comp.name, req.name
                    ));
                    continue;
                }
                let single_ok = providers
                    .iter()
                    .any(|p| p.effective_asil() >= required_level);
                let decomposed_ok = providers
                    .iter()
                    .filter(|p| p.effective_asil() >= required_level.decomposed())
                    .count()
                    >= 2;
                if !single_ok && !decomposed_ok {
                    findings.push(format!(
                        "{}: service `{}` needs ASIL {} (or redundant {}) providers, best is {}",
                        comp.name,
                        req.name,
                        required_level,
                        required_level.decomposed(),
                        providers
                            .iter()
                            .map(|p| p.effective_asil())
                            .max()
                            .expect("non-empty"),
                    ));
                }
            }
        }
        if findings.is_empty() {
            Verdict::pass(self.name())
        } else {
            Verdict::fail(self.name(), findings)
        }
    }
}

/// Security viewpoint: no *influence path* from an untrusted component to a
/// critical service. Influence flows from a component to the components
/// that consume its provided services, transitively.
#[derive(Debug, Default)]
pub struct SecurityViewpoint;

impl Viewpoint for SecurityViewpoint {
    fn name(&self) -> &'static str {
        "security"
    }

    fn check(&self, candidate: &CandidateConfig, _platform: &PlatformModel) -> Verdict {
        let mut findings = Vec::new();
        for comp in &candidate.components {
            if comp.domain != TrustDomain::Untrusted {
                continue;
            }
            // BFS over the influence relation.
            let mut influenced: Vec<&str> = vec![comp.name.as_str()];
            let mut frontier = vec![comp.name.as_str()];
            while let Some(current) = frontier.pop() {
                let provider = candidate.component(current).expect("known component");
                for service in &provider.provides {
                    for consumer in &candidate.components {
                        let consumes = consumer.requires.iter().any(|r| r.name == service.name);
                        if consumes && !influenced.contains(&consumer.name.as_str()) {
                            influenced.push(&consumer.name);
                            frontier.push(&consumer.name);
                        }
                    }
                }
            }
            // Does any influenced component touch a critical service?
            for name in &influenced {
                let c = candidate.component(name).expect("known component");
                for req in &c.requires {
                    if candidate.is_critical_service(&req.name) {
                        findings.push(format!(
                            "untrusted `{}` can influence critical service `{}` via `{}`",
                            comp.name, req.name, name
                        ));
                    }
                }
                // An untrusted provider of a critical service is itself a
                // violation.
                for p in &c.provides {
                    if p.critical && c.domain == TrustDomain::Untrusted {
                        findings.push(format!(
                            "untrusted `{}` provides critical service `{}`",
                            c.name, p.name
                        ));
                    }
                }
            }
        }
        findings.sort();
        findings.dedup();
        if findings.is_empty() {
            Verdict::pass(self.name())
        } else {
            Verdict::fail(self.name(), findings)
        }
    }
}

/// Resource viewpoint: memory and planned utilization within every PE's
/// capacity.
#[derive(Debug, Default)]
pub struct ResourceViewpoint;

impl Viewpoint for ResourceViewpoint {
    fn name(&self) -> &'static str {
        "resources"
    }

    fn check(&self, candidate: &CandidateConfig, platform: &PlatformModel) -> Verdict {
        let mut findings = Vec::new();
        // All components must be mapped to existing PEs.
        for comp in &candidate.components {
            match candidate.mapping.get(&comp.name) {
                None => findings.push(format!("`{}` is unmapped", comp.name)),
                Some(&pe) if pe >= platform.pes.len() => {
                    findings.push(format!("`{}` mapped to unknown PE {pe}", comp.name))
                }
                Some(_) => {}
            }
        }
        for (idx, pe) in platform.pes.iter().enumerate() {
            let mem = candidate.pe_memory_kib(idx);
            if mem > pe.memory_kib {
                findings.push(format!(
                    "{}: memory {mem} KiB exceeds capacity {} KiB",
                    pe.name, pe.memory_kib
                ));
            }
            let util = candidate.pe_utilization(idx);
            if util > pe.max_utilization {
                findings.push(format!(
                    "{}: planned utilization {:.2} exceeds bound {:.2}",
                    pe.name, util, pe.max_utilization
                ));
            }
        }
        if findings.is_empty() {
            Verdict::pass(self.name())
        } else {
            Verdict::fail(self.name(), findings)
        }
    }
}

/// The default viewpoint battery the MCC runs.
pub fn default_viewpoints() -> Vec<Box<dyn Viewpoint>> {
    vec![
        Box::new(ResourceViewpoint),
        Box::new(TimingViewpoint),
        Box::new(SafetyViewpoint),
        Box::new(SecurityViewpoint),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::parse_contracts;
    use std::collections::HashMap;

    fn map_all(components: &[crate::contract::Contract], pe: usize) -> CandidateConfig {
        let mut mapping = HashMap::new();
        let mut frame_mapping = HashMap::new();
        for c in components {
            mapping.insert(c.name.clone(), pe);
            for f in &c.frames {
                frame_mapping.insert(format!("{}.{}", c.name, f.name), 0);
            }
        }
        CandidateConfig {
            components: components.to_vec(),
            mapping,
            frame_mapping,
        }
    }

    #[test]
    fn timing_accepts_feasible_and_rejects_overload() {
        let ok = parse_contracts(
            "component a {\n task t { period 10ms wcet 2ms priority 1 }\n}\n\
             component b {\n task t { period 20ms wcet 4ms priority 2 }\n}",
        )
        .unwrap();
        let platform = PlatformModel::reference();
        let v = TimingViewpoint.check(&map_all(&ok, 0), &platform);
        assert!(v.passed, "{:?}", v.findings);

        let bad = parse_contracts(
            "component a {\n task t { period 10ms wcet 6ms priority 1 }\n}\n\
             component b {\n task t { period 10ms wcet 6ms priority 2 }\n}",
        )
        .unwrap();
        let v = TimingViewpoint.check(&map_all(&bad, 0), &platform);
        assert!(!v.passed);
        assert!(v.findings[0].contains("overload"), "{:?}", v.findings);
    }

    #[test]
    fn timing_checks_can_frames() {
        // 20 frames of 8 bytes every 3 ms on 500kbit/s: utilization
        // 20 * 270us / 3ms = 1.8 -> overloaded.
        let mut src = String::new();
        for i in 0..20 {
            src.push_str(&format!(
                "component c{i} {{\n frame f {{ id 0x{:x} period 3ms payload 8 }}\n}}\n",
                0x100 + i
            ));
        }
        let comps = parse_contracts(&src).unwrap();
        let v = TimingViewpoint.check(&map_all(&comps, 0), &PlatformModel::reference());
        assert!(!v.passed);
    }

    #[test]
    fn safety_requires_sufficient_asil_provider() {
        let src = "component brake {\n asil B\n provides actuator.brake\n}\n\
                   component acc {\n asil D\n requires actuator.brake\n}";
        let comps = parse_contracts(src).unwrap();
        let v = SafetyViewpoint.check(&map_all(&comps, 0), &PlatformModel::reference());
        assert!(!v.passed);
        assert!(v.findings[0].contains("ASIL D"));
    }

    #[test]
    fn safety_accepts_decomposed_redundancy() {
        // Two independent ASIL-B providers satisfy an ASIL-D requirement
        // via decomposition (D -> B + B).
        let src = "component brake1 {\n asil B\n provides actuator.brake\n}\n\
                   component brake2 {\n asil B\n provides actuator.brake\n}\n\
                   component acc {\n asil D\n requires actuator.brake\n}";
        let comps = parse_contracts(src).unwrap();
        let v = SafetyViewpoint.check(&map_all(&comps, 0), &PlatformModel::reference());
        assert!(v.passed, "{:?}", v.findings);
    }

    #[test]
    fn untrusted_provider_effectively_qm() {
        let src = "component sensor {\n asil D\n domain untrusted\n provides sensor.x\n}\n\
                   component user {\n asil A\n requires sensor.x\n}";
        let comps = parse_contracts(src).unwrap();
        let v = SafetyViewpoint.check(&map_all(&comps, 0), &PlatformModel::reference());
        assert!(!v.passed);
    }

    #[test]
    fn security_blocks_untrusted_path_to_critical() {
        // infotainment (untrusted) -> provides media.api consumed by
        // gateway -> gateway requires actuator.brake (critical).
        let src = "component brake {\n provides actuator.brake critical\n}\n\
                   component gateway {\n requires media.api\n requires actuator.brake\n}\n\
                   component infotainment {\n domain untrusted\n provides media.api\n}";
        let comps = parse_contracts(src).unwrap();
        let v = SecurityViewpoint.check(&map_all(&comps, 0), &PlatformModel::reference());
        assert!(!v.passed);
        assert!(v.findings[0].contains("infotainment"), "{:?}", v.findings);
    }

    #[test]
    fn security_accepts_isolated_untrusted() {
        let src = "component brake {\n provides actuator.brake critical\n}\n\
                   component acc {\n requires actuator.brake\n}\n\
                   component infotainment {\n domain untrusted\n provides media.api\n}";
        let comps = parse_contracts(src).unwrap();
        let v = SecurityViewpoint.check(&map_all(&comps, 0), &PlatformModel::reference());
        assert!(v.passed, "{:?}", v.findings);
    }

    #[test]
    fn resources_reject_memory_overflow() {
        let src = "component fat {\n memory 8192\n}";
        let comps = parse_contracts(src).unwrap();
        let v = ResourceViewpoint.check(&map_all(&comps, 0), &PlatformModel::reference());
        assert!(!v.passed);
        assert!(v.findings[0].contains("memory"));
    }

    #[test]
    fn resources_reject_unmapped() {
        let comps = parse_contracts("component x {\n}").unwrap();
        let candidate = CandidateConfig {
            components: comps,
            mapping: HashMap::new(),
            frame_mapping: HashMap::new(),
        };
        let v = ResourceViewpoint.check(&candidate, &PlatformModel::reference());
        assert!(!v.passed);
        assert!(v.findings[0].contains("unmapped"));
    }

    #[test]
    fn default_battery_has_four_viewpoints() {
        assert_eq!(default_viewpoints().len(), 4);
    }
}
