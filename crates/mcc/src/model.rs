//! The model domain's system representation: platform model, mapping and
//! the refined configuration candidate a proposed change produces.

use std::collections::HashMap;

use crate::contract::Contract;

/// A processing element in the platform model.
#[derive(Debug, Clone)]
pub struct PeModel {
    /// PE name (matches the execution platform's naming).
    pub name: String,
    /// Memory capacity in KiB.
    pub memory_kib: u32,
    /// Maximum planned utilization (headroom below 1.0 kept for robustness).
    pub max_utilization: f64,
}

/// A network in the platform model.
#[derive(Debug, Clone)]
pub struct NetworkModel {
    /// Network name.
    pub name: String,
    /// Bitrate in bit/s.
    pub bitrate_bps: u32,
}

/// The technical architecture the MCC maps onto.
#[derive(Debug, Clone, Default)]
pub struct PlatformModel {
    /// Processing elements.
    pub pes: Vec<PeModel>,
    /// Networks (one CAN bus in the reference platform).
    pub networks: Vec<NetworkModel>,
}

impl PlatformModel {
    /// The reference platform of the experiments: two ECUs and one
    /// 500 kbit/s CAN bus.
    pub fn reference() -> Self {
        PlatformModel {
            pes: vec![
                PeModel {
                    name: "ecu0".into(),
                    memory_kib: 4_096,
                    max_utilization: 0.85,
                },
                PeModel {
                    name: "ecu1".into(),
                    memory_kib: 4_096,
                    max_utilization: 0.85,
                },
            ],
            networks: vec![NetworkModel {
                name: "can0".into(),
                bitrate_bps: 500_000,
            }],
        }
    }

    /// Looks up a PE index by name.
    pub fn pe_index(&self, name: &str) -> Option<usize> {
        self.pes.iter().position(|p| p.name == name)
    }
}

/// A candidate system configuration: contracts plus their mapping.
#[derive(Debug, Clone, Default)]
pub struct CandidateConfig {
    /// All component contracts in the configuration.
    pub components: Vec<Contract>,
    /// Component name → PE index.
    pub mapping: HashMap<String, usize>,
    /// Frame name (`component.frame`) → network index.
    pub frame_mapping: HashMap<String, usize>,
}

impl CandidateConfig {
    /// The contract of a component, if present.
    pub fn component(&self, name: &str) -> Option<&Contract> {
        self.components.iter().find(|c| c.name == name)
    }

    /// The provider contract of a service, if any.
    pub fn provider_of(&self, service: &str) -> Option<&Contract> {
        self.components
            .iter()
            .find(|c| c.provides.iter().any(|p| p.name == service))
    }

    /// All providers of a service (for redundancy-aware safety analysis).
    pub fn providers_of(&self, service: &str) -> Vec<&Contract> {
        self.components
            .iter()
            .filter(|c| c.provides.iter().any(|p| p.name == service))
            .collect()
    }

    /// Whether a service is marked critical by any provider.
    pub fn is_critical_service(&self, service: &str) -> bool {
        self.components
            .iter()
            .any(|c| c.provides.iter().any(|p| p.name == service && p.critical))
    }

    /// Planned utilization of a PE (sum of task utilizations mapped to it).
    pub fn pe_utilization(&self, pe: usize) -> f64 {
        self.components
            .iter()
            .filter(|c| self.mapping.get(&c.name) == Some(&pe))
            .flat_map(|c| &c.tasks)
            .map(|t| t.wcet.as_secs_f64() / t.period.as_secs_f64())
            .sum()
    }

    /// Planned memory use of a PE in KiB.
    pub fn pe_memory_kib(&self, pe: usize) -> u32 {
        self.components
            .iter()
            .filter(|c| self.mapping.get(&c.name) == Some(&pe))
            .map(|c| c.memory_kib)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::parse_contracts;

    fn candidate() -> CandidateConfig {
        let src = r#"
component radar_driver {
  asil B
  provides sensor.radar
  task drv { period 10ms wcet 1ms priority 1 }
}
component acc {
  asil C
  requires sensor.radar
  provides control.acc
  task ctl { period 20ms wcet 4ms priority 3 }
}
"#;
        let components = parse_contracts(src).unwrap();
        let mut mapping = HashMap::new();
        mapping.insert("radar_driver".into(), 0);
        mapping.insert("acc".into(), 0);
        CandidateConfig {
            components,
            mapping,
            frame_mapping: HashMap::new(),
        }
    }

    #[test]
    fn provider_lookup() {
        let c = candidate();
        assert_eq!(c.provider_of("sensor.radar").unwrap().name, "radar_driver");
        assert!(c.provider_of("nope").is_none());
        assert_eq!(c.providers_of("sensor.radar").len(), 1);
    }

    #[test]
    fn utilization_and_memory_sums() {
        let c = candidate();
        // 1/10 + 4/20 = 0.3
        assert!((c.pe_utilization(0) - 0.3).abs() < 1e-9);
        assert_eq!(c.pe_memory_kib(0), 128);
        assert_eq!(c.pe_utilization(1), 0.0);
    }

    #[test]
    fn reference_platform_shape() {
        let p = PlatformModel::reference();
        assert_eq!(p.pes.len(), 2);
        assert_eq!(p.networks.len(), 1);
        assert_eq!(p.pe_index("ecu1"), Some(1));
        assert_eq!(p.pe_index("nope"), None);
    }
}
