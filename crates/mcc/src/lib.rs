//! # saav-mcc — the Multi-Change Controller (model domain)
//!
//! The model domain of the CCC architecture (Sec. II-A of Schlatow et al.,
//! DATE 2017): an automated, model-based integration process that admits
//! in-field changes to a safety-critical system only after formal acceptance
//! tests pass.
//!
//! * [`contract`] — the contracting language: per-component requirements
//!   across viewpoints (ASIL, trust domain, tasks, frames, resources), with
//!   a line-oriented text syntax and parser.
//! * [`model`] — platform model and candidate configurations (the
//!   functional → technical → implementation refinement chain).
//! * [`viewpoints`] — acceptance tests: timing (WCRT via `saav-timing`),
//!   safety (ASIL sufficiency incl. decomposition over redundant
//!   providers), security (no influence path from untrusted components to
//!   critical services), resources (memory/utilization headroom).
//! * [`integration`] — the MCC itself: admission, first-fit mapping,
//!   viewpoint battery, versioned commits and rollback.
//! * [`renegotiator`] — the in-loop bridge: runtime pressure (deadline
//!   misses, thermal/DVFS counters) mapped to prepared update requests,
//!   admitted through the same viewpoints, with deterministic fallback
//!   and rollback.
//! * [`dependency`] — automated cross-layer FMEA: failure propagation over
//!   typed dependency graphs with redundancy groups (Sec. V).
//!
//! ```
//! use saav_mcc::contract::parse_contracts;
//! use saav_mcc::integration::{Mcc, UpdateRequest};
//! use saav_mcc::model::PlatformModel;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut mcc = Mcc::new(PlatformModel::reference());
//! let report = mcc.propose_update(UpdateRequest {
//!     label: "add radar driver".into(),
//!     add: parse_contracts(
//!         "component radar {\n provides sensor.radar\n \
//!          task drv { period 10ms wcet 1ms priority 1 }\n}")?,
//!     remove: vec![],
//! })?;
//! assert!(report.accepted);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod contract;
pub mod dependency;
pub mod integration;
pub mod model;
pub mod renegotiator;
pub mod viewpoints;

pub use contract::{parse_contracts, Asil, Contract, ParseError, TrustDomain};
pub use dependency::{DependencyGraph, ElementId, LayerTag};
pub use integration::{IntegrationError, IntegrationReport, Mcc, UpdateRequest};
pub use model::{CandidateConfig, PlatformModel};
pub use renegotiator::{NegotiationOutcome, Pressure, PressureKind, ReconfigPlan, Renegotiator};
pub use viewpoints::{default_viewpoints, Verdict, Viewpoint};
