//! In-loop contract renegotiation: the live bridge between runtime
//! pressure signals and the MCC's integration process.
//!
//! Sec. II-A describes the MCC as an *in-field* integration authority:
//! changes are proposed while the system runs and admitted only after the
//! acceptance tests pass. The engine's containment layers detect pressure
//! (deadline misses on a throttled PE, thermal stress, DVFS events) but
//! until now reconfigured contracts by hand. The [`Renegotiator`] closes
//! that loop: pressure classes map to prepared [`UpdateRequest`]s
//! (registered once at assembly time, so the in-loop path performs no
//! request construction), each attempt runs the full viewpoint battery,
//! and a rejected preferred request deterministically falls back to a
//! conservative alternative. When the pressure clears, [`Renegotiator::
//! rollback`] restores the previously admitted configuration.
//!
//! Everything here is deterministic: plans are tried in registration
//! order, viewpoints run in battery order, and no wall-clock or host state
//! is consulted — the same pressure sequence yields bit-identical
//! outcomes on every rerun and thread count.

use std::fmt;

use crate::integration::{IntegrationError, Mcc, UpdateRequest};
use crate::model::CandidateConfig;

/// Classes of runtime pressure a renegotiation plan can respond to.
/// Mirrors the engine's problem-kind vocabulary without depending on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PressureKind {
    /// Thermal stress: a hot, throttled PE missing deadlines.
    Thermal,
    /// Timing violations without thermal cause (overload, interference).
    Timing,
}

/// A sampled pressure reading handed to [`Renegotiator::respond`]. All
/// fields are plain numbers so sampling never allocates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pressure {
    /// The pressure class observed.
    pub kind: PressureKind,
    /// Die temperature of the stressed PE (°C).
    pub temperature_c: f64,
    /// Deadline-miss ratio over the observation window (`[0,1]`).
    pub deadline_miss_ratio: f64,
    /// DVFS throttle events observed so far.
    pub throttle_events: u64,
}

/// A prepared response to one pressure class: a preferred update and an
/// optional conservative fallback tried when the viewpoints reject the
/// preferred one.
#[derive(Debug, Clone)]
pub struct ReconfigPlan {
    /// The pressure class this plan responds to.
    pub kind: PressureKind,
    /// The update tried first.
    pub preferred: UpdateRequest,
    /// Tried when `preferred` fails its acceptance tests.
    pub fallback: Option<UpdateRequest>,
}

/// Outcome of one [`Renegotiator::respond`] attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NegotiationOutcome {
    /// The preferred update passed every viewpoint and was committed.
    Accepted {
        /// Label of the committed update.
        label: String,
    },
    /// The preferred update was rejected; the fallback was committed.
    FallbackAccepted {
        /// Label of the committed fallback update.
        label: String,
        /// Viewpoints that rejected the preferred update, in battery order.
        rejected_by: Vec<&'static str>,
    },
    /// Every candidate update was rejected; the configuration is unchanged.
    Rejected {
        /// Viewpoints that rejected the last attempt, in battery order.
        rejected_by: Vec<&'static str>,
    },
    /// No plan is registered for the observed pressure class.
    NoPlan,
}

impl fmt::Display for NegotiationOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NegotiationOutcome::Accepted { label } => write!(f, "accepted `{label}`"),
            NegotiationOutcome::FallbackAccepted { label, rejected_by } => {
                write!(f, "fallback `{label}` (rejected by {rejected_by:?})")
            }
            NegotiationOutcome::Rejected { rejected_by } => {
                write!(f, "rejected by {rejected_by:?}")
            }
            NegotiationOutcome::NoPlan => f.write_str("no plan"),
        }
    }
}

/// The live renegotiation controller: an [`Mcc`] plus the prepared
/// pressure→update plans, with switch accounting.
#[derive(Debug)]
pub struct Renegotiator {
    mcc: Mcc,
    plans: Vec<ReconfigPlan>,
    attempts: u64,
    commits: u64,
    rollbacks: u64,
}

impl Renegotiator {
    /// Wraps an MCC (typically carrying an installed baseline) with an
    /// empty plan table.
    pub fn new(mcc: Mcc) -> Self {
        Renegotiator {
            mcc,
            plans: Vec::new(),
            attempts: 0,
            commits: 0,
            rollbacks: 0,
        }
    }

    /// Registers a plan. Plans are consulted in registration order; the
    /// first whose `kind` matches the pressure wins.
    pub fn register(&mut self, plan: ReconfigPlan) {
        self.plans.push(plan);
    }

    /// The wrapped controller.
    pub fn mcc(&self) -> &Mcc {
        &self.mcc
    }

    /// Mutable access to the wrapped controller (baseline installation,
    /// ablation of the viewpoint battery).
    pub fn mcc_mut(&mut self) -> &mut Mcc {
        &mut self.mcc
    }

    /// Renegotiation attempts so far (each may run one or two updates).
    pub fn attempts(&self) -> u64 {
        self.attempts
    }

    /// Committed configuration switches (accepted preferred or fallback).
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// Rollbacks performed.
    pub fn rollbacks(&self) -> u64 {
        self.rollbacks
    }

    /// Responds to a pressure sample: tries the matching plan's preferred
    /// update, then its fallback when the viewpoints reject the preferred
    /// one. Refinement failures (duplicate component, no feasible
    /// mapping) are hard errors — plans are supposed to be well-formed
    /// against the installed baseline.
    ///
    /// # Errors
    /// Propagates [`IntegrationError`] from a malformed plan.
    pub fn respond(&mut self, pressure: &Pressure) -> Result<NegotiationOutcome, IntegrationError> {
        let Some(idx) = self.plans.iter().position(|p| p.kind == pressure.kind) else {
            return Ok(NegotiationOutcome::NoPlan);
        };
        self.attempts += 1;
        let plan = self.plans[idx].clone();
        let report = self.mcc.propose_update(plan.preferred)?;
        if report.accepted {
            self.commits += 1;
            return Ok(NegotiationOutcome::Accepted {
                label: report.label,
            });
        }
        let rejected_by = report.rejecting_viewpoints();
        let Some(fallback) = plan.fallback else {
            return Ok(NegotiationOutcome::Rejected { rejected_by });
        };
        let fb = self.mcc.propose_update(fallback)?;
        if fb.accepted {
            self.commits += 1;
            Ok(NegotiationOutcome::FallbackAccepted {
                label: fb.label,
                rejected_by,
            })
        } else {
            Ok(NegotiationOutcome::Rejected {
                rejected_by: fb.rejecting_viewpoints(),
            })
        }
    }

    /// Restores the previously admitted configuration (pressure cleared).
    ///
    /// # Errors
    /// [`IntegrationError::NoHistory`] when nothing was committed before.
    pub fn rollback(&mut self) -> Result<&CandidateConfig, IntegrationError> {
        self.mcc.rollback()?;
        self.rollbacks += 1;
        Ok(self.mcc.current())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::parse_contracts;
    use crate::model::PlatformModel;

    fn baseline_mcc() -> Mcc {
        let mut mcc = Mcc::new(PlatformModel::reference());
        let base = parse_contracts(
            "component ctl {\n task t { period 10ms wcet 3ms priority 3 }\n}\n\
             component drv {\n task t { period 10ms wcet 1ms priority 1 }\n}",
        )
        .unwrap();
        let report = mcc
            .propose_update(UpdateRequest {
                label: "baseline".into(),
                add: base,
                remove: vec![],
            })
            .unwrap();
        assert!(report.accepted);
        mcc
    }

    fn pressure() -> Pressure {
        Pressure {
            kind: PressureKind::Thermal,
            temperature_c: 85.0,
            deadline_miss_ratio: 0.2,
            throttle_events: 4,
        }
    }

    #[test]
    fn accepted_preferred_commits() {
        let mut r = Renegotiator::new(baseline_mcc());
        r.register(ReconfigPlan {
            kind: PressureKind::Thermal,
            preferred: UpdateRequest {
                label: "lowrate".into(),
                add: parse_contracts(
                    "component ctl_lowrate {\n task t { period 20ms wcet 3ms priority 3 }\n}",
                )
                .unwrap(),
                remove: vec!["ctl".into()],
            },
            fallback: None,
        });
        let outcome = r.respond(&pressure()).unwrap();
        assert_eq!(
            outcome,
            NegotiationOutcome::Accepted {
                label: "lowrate".into()
            }
        );
        assert_eq!(r.commits(), 1);
        assert!(r.mcc().current().component("ctl_lowrate").is_some());
        assert!(r.mcc().current().component("ctl").is_none());
    }

    #[test]
    fn rejected_preferred_falls_back_deterministically() {
        let mut r = Renegotiator::new(baseline_mcc());
        // Preferred: a tight-deadline add-on the timing viewpoint rejects.
        r.register(ReconfigPlan {
            kind: PressureKind::Thermal,
            preferred: UpdateRequest {
                label: "boost".into(),
                add: parse_contracts(
                    "component boost {\n task t { period 10ms wcet 1ms deadline 2ms priority 9 }\n}",
                )
                .unwrap(),
                remove: vec![],
            },
            fallback: Some(UpdateRequest {
                label: "lowrate".into(),
                add: parse_contracts(
                    "component ctl_lowrate {\n task t { period 20ms wcet 3ms priority 3 }\n}",
                )
                .unwrap(),
                remove: vec!["ctl".into()],
            }),
        });
        let outcome = r.respond(&pressure()).unwrap();
        assert_eq!(
            outcome,
            NegotiationOutcome::FallbackAccepted {
                label: "lowrate".into(),
                rejected_by: vec!["timing"],
            }
        );
        // Rerun from a fresh controller: bit-identical outcome.
        let mut r2 = Renegotiator::new(baseline_mcc());
        r2.register(ReconfigPlan {
            kind: PressureKind::Thermal,
            preferred: UpdateRequest {
                label: "boost".into(),
                add: parse_contracts(
                    "component boost {\n task t { period 10ms wcet 1ms deadline 2ms priority 9 }\n}",
                )
                .unwrap(),
                remove: vec![],
            },
            fallback: Some(UpdateRequest {
                label: "lowrate".into(),
                add: parse_contracts(
                    "component ctl_lowrate {\n task t { period 20ms wcet 3ms priority 3 }\n}",
                )
                .unwrap(),
                remove: vec!["ctl".into()],
            }),
        });
        assert_eq!(outcome, r2.respond(&pressure()).unwrap());
    }

    #[test]
    fn no_plan_and_rollback_accounting() {
        let mut r = Renegotiator::new(baseline_mcc());
        assert_eq!(
            r.respond(&Pressure {
                kind: PressureKind::Timing,
                ..pressure()
            })
            .unwrap(),
            NegotiationOutcome::NoPlan
        );
        assert_eq!(r.attempts(), 0);
        // Rollback to the pre-baseline empty configuration.
        let restored = r.rollback().unwrap();
        assert!(restored.components.is_empty());
        assert_eq!(r.rollbacks(), 1);
        // Nothing further to roll back: the error propagates.
        assert_eq!(r.rollback().unwrap_err(), IntegrationError::NoHistory);
        assert_eq!(r.rollbacks(), 1);
    }
}
