//! Cross-layer dependency analysis (automated FMEA).
//!
//! Sec. V: *"In traditional design, such dependencies are identified with
//! semiformal methods, such as a Failure Mode and Effects Analysis (FMEA).
//! In CCC, such dependency analysis is automated to derive cross-layer
//! dependency models describing the effect of change and actions on the
//! overall system"* (Möstl & Ernst \[23\], \[24\]).
//!
//! The model is a typed directed graph of elements across layers (function,
//! software component, service, processing element, network, frame …) with
//! *depends-on* edges and **redundancy groups**: an element with a
//! redundancy group fails only when *all* members of the group have failed.
//! [`DependencyGraph::affected_by`] computes transitive failure propagation;
//! [`DependencyGraph::fmea`] tabulates single-point failures.

use std::collections::HashMap;
use std::fmt;

/// The architectural layer an element belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LayerTag {
    /// Driving function / ability.
    Function,
    /// Software component.
    Software,
    /// Platform hardware (PE, memory).
    Platform,
    /// Communication (bus, controller).
    Communication,
}

impl fmt::Display for LayerTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LayerTag::Function => "function",
            LayerTag::Software => "software",
            LayerTag::Platform => "platform",
            LayerTag::Communication => "communication",
        };
        f.write_str(s)
    }
}

/// Identifier of an element in a [`DependencyGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ElementId(pub usize);

#[derive(Debug, Clone)]
struct Element {
    name: String,
    layer: LayerTag,
    /// Elements this one depends on. Plain entries are single points of
    /// failure; grouped entries are redundant alternatives.
    depends: Vec<ElementId>,
    /// Redundancy groups: each group is a set of alternatives of which at
    /// least one must survive.
    redundancy: Vec<Vec<ElementId>>,
}

/// The cross-layer dependency model.
#[derive(Debug, Clone, Default)]
pub struct DependencyGraph {
    elements: Vec<Element>,
    by_name: HashMap<String, ElementId>,
}

impl DependencyGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        DependencyGraph::default()
    }

    /// Adds an element.
    ///
    /// # Panics
    /// Panics on duplicate names.
    pub fn add(&mut self, name: impl Into<String>, layer: LayerTag) -> ElementId {
        let name = name.into();
        assert!(
            !self.by_name.contains_key(&name),
            "duplicate element `{name}`"
        );
        let id = ElementId(self.elements.len());
        self.by_name.insert(name.clone(), id);
        self.elements.push(Element {
            name,
            layer,
            depends: Vec::new(),
            redundancy: Vec::new(),
        });
        id
    }

    /// Declares a hard (single-point) dependency.
    pub fn depends_on(&mut self, element: ElementId, on: ElementId) {
        self.elements[element.0].depends.push(on);
    }

    /// Declares a redundancy group: `element` needs at least one of
    /// `alternatives` to survive.
    ///
    /// # Panics
    /// Panics on an empty group.
    pub fn depends_on_any(&mut self, element: ElementId, alternatives: Vec<ElementId>) {
        assert!(!alternatives.is_empty(), "empty redundancy group");
        self.elements[element.0].redundancy.push(alternatives);
    }

    /// Element lookup by name.
    pub fn element(&self, name: &str) -> Option<ElementId> {
        self.by_name.get(name).copied()
    }

    /// Name of an element.
    ///
    /// # Panics
    /// Panics on an invalid id.
    pub fn name(&self, id: ElementId) -> &str {
        &self.elements[id.0].name
    }

    /// Layer of an element.
    ///
    /// # Panics
    /// Panics on an invalid id.
    pub fn layer(&self, id: ElementId) -> LayerTag {
        self.elements[id.0].layer
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Whether the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Computes the set of elements that fail (transitively) when `failed`
    /// fail, honoring redundancy groups. The result includes the initially
    /// failed elements and is sorted.
    pub fn affected_by(&self, failed: &[ElementId]) -> Vec<ElementId> {
        let mut down = vec![false; self.elements.len()];
        for &f in failed {
            down[f.0] = true;
        }
        // Fixpoint: an element fails if any hard dependency failed, or all
        // members of any redundancy group failed.
        loop {
            let mut changed = false;
            for (i, el) in self.elements.iter().enumerate() {
                if down[i] {
                    continue;
                }
                let hard_hit = el.depends.iter().any(|d| down[d.0]);
                let group_hit = el
                    .redundancy
                    .iter()
                    .any(|group| group.iter().all(|d| down[d.0]));
                if hard_hit || group_hit {
                    down[i] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        let mut out: Vec<ElementId> = down
            .iter()
            .enumerate()
            .filter(|(_, &d)| d)
            .map(|(i, _)| ElementId(i))
            .collect();
        out.sort();
        out
    }

    /// Single-point FMEA: for each element, the function-layer elements its
    /// sole failure would take down.
    pub fn fmea(&self) -> Vec<(ElementId, Vec<ElementId>)> {
        (0..self.elements.len())
            .map(|i| {
                let id = ElementId(i);
                let affected: Vec<ElementId> = self
                    .affected_by(&[id])
                    .into_iter()
                    .filter(|&a| a != id && self.layer(a) == LayerTag::Function)
                    .collect();
                (id, affected)
            })
            .collect()
    }

    /// Elements whose single failure takes down at least one function:
    /// the critical items list of the FMEA.
    pub fn single_points_of_failure(&self) -> Vec<ElementId> {
        self.fmea()
            .into_iter()
            .filter(|(id, affected)| !affected.is_empty() && self.layer(*id) != LayerTag::Function)
            .map(|(id, _)| id)
            .collect()
    }

    /// The lowest layer at which a failure of `failed` can be contained:
    /// the layer of the failed element itself if some redundancy absorbs it
    /// (no function affected), otherwise [`LayerTag::Function`].
    pub fn containment_layer(&self, failed: ElementId) -> LayerTag {
        let affected = self.affected_by(&[failed]);
        let any_function = affected
            .iter()
            .any(|&a| a != failed && self.layer(a) == LayerTag::Function);
        if any_function {
            LayerTag::Function
        } else {
            self.layer(failed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// brake function depends on brake_sw on ecu0; redundant radar pair.
    fn sample() -> (DependencyGraph, HashMap<&'static str, ElementId>) {
        let mut g = DependencyGraph::new();
        let mut ids = HashMap::new();
        ids.insert("braking", g.add("braking", LayerTag::Function));
        ids.insert("perception", g.add("perception", LayerTag::Function));
        ids.insert("brake_sw", g.add("brake_sw", LayerTag::Software));
        ids.insert("radar_a", g.add("radar_a", LayerTag::Platform));
        ids.insert("radar_b", g.add("radar_b", LayerTag::Platform));
        ids.insert("ecu0", g.add("ecu0", LayerTag::Platform));
        ids.insert("can0", g.add("can0", LayerTag::Communication));
        g.depends_on(ids["braking"], ids["brake_sw"]);
        g.depends_on(ids["brake_sw"], ids["ecu0"]);
        g.depends_on(ids["brake_sw"], ids["can0"]);
        g.depends_on_any(ids["perception"], vec![ids["radar_a"], ids["radar_b"]]);
        (g, ids)
    }

    #[test]
    fn hard_dependency_propagates_across_layers() {
        let (g, ids) = sample();
        let affected = g.affected_by(&[ids["ecu0"]]);
        assert!(affected.contains(&ids["brake_sw"]));
        assert!(affected.contains(&ids["braking"]));
        assert!(!affected.contains(&ids["perception"]));
    }

    #[test]
    fn redundancy_absorbs_single_failure() {
        let (g, ids) = sample();
        let affected = g.affected_by(&[ids["radar_a"]]);
        assert!(!affected.contains(&ids["perception"]), "redundant pair");
        // Both radars down: perception fails.
        let affected = g.affected_by(&[ids["radar_a"], ids["radar_b"]]);
        assert!(affected.contains(&ids["perception"]));
    }

    #[test]
    fn fmea_lists_single_points_of_failure() {
        let (g, ids) = sample();
        let spofs = g.single_points_of_failure();
        assert!(spofs.contains(&ids["ecu0"]));
        assert!(spofs.contains(&ids["can0"]));
        assert!(spofs.contains(&ids["brake_sw"]));
        assert!(!spofs.contains(&ids["radar_a"]), "covered by redundancy");
    }

    #[test]
    fn containment_layer_reflects_redundancy() {
        let (g, ids) = sample();
        // Radar A fails: contained at the platform layer (redundancy).
        assert_eq!(g.containment_layer(ids["radar_a"]), LayerTag::Platform);
        // ECU fails: reaches the function layer.
        assert_eq!(g.containment_layer(ids["ecu0"]), LayerTag::Function);
    }

    #[test]
    fn lookup_helpers() {
        let (g, ids) = sample();
        assert_eq!(g.element("braking"), Some(ids["braking"]));
        assert_eq!(g.name(ids["can0"]), "can0");
        assert_eq!(g.layer(ids["can0"]), LayerTag::Communication);
        assert_eq!(g.len(), 7);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_names_panic() {
        let mut g = DependencyGraph::new();
        g.add("x", LayerTag::Function);
        g.add("x", LayerTag::Platform);
    }
}
