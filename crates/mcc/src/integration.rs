//! The Multi-Change Controller's integration process.
//!
//! Sec. II-A: the MCC *"performs the integration process and ensures that a
//! new configuration passes all necessary acceptance and conformance
//! tests"*, gradually refining the model of the new configuration. Here the
//! refinement is: (1) contract admission, (2) mapping the new components to
//! the platform (first-fit by memory and utilization headroom), (3) frame
//! mapping, (4) the viewpoint battery as acceptance tests. Accepted
//! configurations are versioned; [`Mcc::rollback`] restores the previous
//! one (the self-protection path for updates that misbehave in the field
//! despite passing analysis).

use std::collections::HashMap;
use std::fmt;

use crate::contract::Contract;
use crate::model::{CandidateConfig, PlatformModel};
use crate::viewpoints::{default_viewpoints, Verdict, Viewpoint};

/// A requested change to the running system.
#[derive(Debug, Clone, Default)]
pub struct UpdateRequest {
    /// Human-readable label for reports.
    pub label: String,
    /// Components to add.
    pub add: Vec<Contract>,
    /// Component names to remove.
    pub remove: Vec<String>,
}

/// Result of one integration attempt.
#[derive(Debug, Clone)]
pub struct IntegrationReport {
    /// The request label.
    pub label: String,
    /// Whether the update was accepted and committed.
    pub accepted: bool,
    /// Refinement log (admission, mapping decisions).
    pub log: Vec<String>,
    /// Per-viewpoint verdicts (empty if refinement already failed).
    pub verdicts: Vec<Verdict>,
}

impl IntegrationReport {
    /// Names of viewpoints that rejected the update.
    pub fn rejecting_viewpoints(&self) -> Vec<&'static str> {
        self.verdicts
            .iter()
            .filter(|v| !v.passed)
            .map(|v| v.viewpoint)
            .collect()
    }
}

impl fmt::Display for IntegrationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "update `{}`: {}",
            self.label,
            if self.accepted {
                "ACCEPTED"
            } else {
                "REJECTED"
            }
        )?;
        for v in &self.verdicts {
            writeln!(
                f,
                "  [{}] {}",
                if v.passed { "pass" } else { "FAIL" },
                v.viewpoint
            )?;
            for finding in &v.findings {
                writeln!(f, "    - {finding}")?;
            }
        }
        Ok(())
    }
}

/// Errors of the integration process itself (before acceptance testing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IntegrationError {
    /// A component to add already exists.
    DuplicateComponent(String),
    /// A component to remove does not exist.
    UnknownComponent(String),
    /// No PE can host the component within its resource bounds.
    NoFeasibleMapping(String),
    /// Nothing to roll back to.
    NoHistory,
}

impl fmt::Display for IntegrationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntegrationError::DuplicateComponent(n) => {
                write!(f, "component `{n}` already integrated")
            }
            IntegrationError::UnknownComponent(n) => write!(f, "unknown component `{n}`"),
            IntegrationError::NoFeasibleMapping(n) => {
                write!(f, "no feasible mapping for `{n}`")
            }
            IntegrationError::NoHistory => write!(f, "no previous configuration"),
        }
    }
}

impl std::error::Error for IntegrationError {}

/// The Multi-Change Controller.
pub struct Mcc {
    platform: PlatformModel,
    current: CandidateConfig,
    history: Vec<CandidateConfig>,
    viewpoints: Vec<Box<dyn Viewpoint>>,
    reports: Vec<IntegrationReport>,
}

impl fmt::Debug for Mcc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mcc")
            .field("components", &self.current.components.len())
            .field("history_depth", &self.history.len())
            .field("viewpoints", &self.viewpoints.len())
            .finish()
    }
}

impl Mcc {
    /// Creates an MCC over a platform with the default viewpoint battery.
    pub fn new(platform: PlatformModel) -> Self {
        Mcc {
            platform,
            current: CandidateConfig::default(),
            history: Vec::new(),
            viewpoints: default_viewpoints(),
            reports: Vec::new(),
        }
    }

    /// Replaces the viewpoint battery (for ablations).
    pub fn set_viewpoints(&mut self, viewpoints: Vec<Box<dyn Viewpoint>>) {
        self.viewpoints = viewpoints;
    }

    /// The currently accepted configuration.
    pub fn current(&self) -> &CandidateConfig {
        &self.current
    }

    /// Installs a pre-certified baseline configuration without running the
    /// viewpoint battery and clears the version history — the live engine
    /// mounts the assembly-time configuration this way, so every later
    /// [`Mcc::rollback`] bottoms out at the baseline, never at an empty
    /// system. The caller vouches for the baseline (the engine's is
    /// battery-checked in its own tests).
    pub fn install_baseline(&mut self, config: CandidateConfig) {
        self.current = config;
        self.history.clear();
    }

    /// Depth of the version history (rollbacks available).
    pub fn history_depth(&self) -> usize {
        self.history.len()
    }

    /// The platform model.
    pub fn platform(&self) -> &PlatformModel {
        &self.platform
    }

    /// All integration reports so far.
    pub fn reports(&self) -> &[IntegrationReport] {
        &self.reports
    }

    /// First-fit mapping of a component: the first PE with enough memory
    /// and utilization headroom.
    fn map_component(
        &self,
        candidate: &CandidateConfig,
        contract: &Contract,
    ) -> Option<(usize, String)> {
        let util: f64 = contract
            .tasks
            .iter()
            .map(|t| t.wcet.as_secs_f64() / t.period.as_secs_f64())
            .sum();
        for (idx, pe) in self.platform.pes.iter().enumerate() {
            let mem_ok = candidate.pe_memory_kib(idx) + contract.memory_kib <= pe.memory_kib;
            let util_ok = candidate.pe_utilization(idx) + util <= pe.max_utilization;
            if mem_ok && util_ok {
                return Some((idx, pe.name.clone()));
            }
        }
        None
    }

    /// Runs the integration process for an update request. On acceptance the
    /// new configuration is committed; on rejection the current one is kept.
    ///
    /// # Errors
    /// [`IntegrationError`] when refinement fails before acceptance testing
    /// (duplicate/unknown components, no feasible mapping). Viewpoint
    /// rejections are *not* errors; they produce a report with
    /// `accepted == false`.
    pub fn propose_update(
        &mut self,
        request: UpdateRequest,
    ) -> Result<IntegrationReport, IntegrationError> {
        let mut log = Vec::new();
        // Step 1: admission.
        for c in &request.add {
            if self.current.component(&c.name).is_some() {
                return Err(IntegrationError::DuplicateComponent(c.name.clone()));
            }
        }
        for name in &request.remove {
            if self.current.component(name).is_none() {
                return Err(IntegrationError::UnknownComponent(name.clone()));
            }
        }
        // Step 2: build the candidate = current − removed + added.
        let mut candidate = self.current.clone();
        for name in &request.remove {
            candidate.components.retain(|c| &c.name != name);
            candidate.mapping.remove(name);
            candidate
                .frame_mapping
                .retain(|k, _| !k.starts_with(&format!("{name}.")));
            log.push(format!("removed `{name}`"));
        }
        // Step 3: map new components (functional → technical architecture).
        for contract in &request.add {
            let (pe_idx, pe_name) = self
                .map_component(&candidate, contract)
                .ok_or_else(|| IntegrationError::NoFeasibleMapping(contract.name.clone()))?;
            log.push(format!("mapped `{}` onto {}", contract.name, pe_name));
            candidate.mapping.insert(contract.name.clone(), pe_idx);
            for f in &contract.frames {
                // Single-network reference platform: everything on net 0.
                candidate
                    .frame_mapping
                    .insert(format!("{}.{}", contract.name, f.name), 0);
            }
            candidate.components.push(contract.clone());
        }
        // Step 4: acceptance tests.
        let verdicts: Vec<Verdict> = self
            .viewpoints
            .iter()
            .map(|v| v.check(&candidate, &self.platform))
            .collect();
        let accepted = verdicts.iter().all(|v| v.passed);
        if accepted {
            self.history
                .push(std::mem::replace(&mut self.current, candidate));
            log.push("configuration committed".into());
        } else {
            log.push("configuration discarded".into());
        }
        let report = IntegrationReport {
            label: request.label,
            accepted,
            log,
            verdicts,
        };
        self.reports.push(report.clone());
        Ok(report)
    }

    /// Restores the previously accepted configuration.
    ///
    /// # Errors
    /// [`IntegrationError::NoHistory`] when nothing was committed before.
    pub fn rollback(&mut self) -> Result<(), IntegrationError> {
        let previous = self.history.pop().ok_or(IntegrationError::NoHistory)?;
        self.current = previous;
        Ok(())
    }

    /// A map from component names to PE names in the current configuration.
    pub fn placement(&self) -> HashMap<String, String> {
        self.current
            .mapping
            .iter()
            .map(|(comp, &pe)| (comp.clone(), self.platform.pes[pe].name.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::parse_contracts;

    fn mcc() -> Mcc {
        Mcc::new(PlatformModel::reference())
    }

    fn contracts(src: &str) -> Vec<Contract> {
        parse_contracts(src).unwrap()
    }

    #[test]
    fn accepts_wellformed_update() {
        let mut m = mcc();
        let report = m
            .propose_update(UpdateRequest {
                label: "base".into(),
                add: contracts(
                    "component radar {\n asil B\n provides sensor.radar\n \
                     task drv { period 10ms wcet 1ms priority 1 }\n}\n\
                     component acc {\n asil B\n requires sensor.radar\n \
                     task ctl { period 20ms wcet 4ms priority 3 }\n}",
                ),
                remove: vec![],
            })
            .unwrap();
        assert!(report.accepted, "{report}");
        assert_eq!(m.current().components.len(), 2);
        assert!(m.placement().contains_key("acc"));
    }

    #[test]
    fn rejects_timing_violation_and_keeps_old_config() {
        let mut m = mcc();
        m.propose_update(UpdateRequest {
            label: "base".into(),
            add: contracts("component a {\n task t { period 10ms wcet 3ms priority 1 }\n}"),
            remove: vec![],
        })
        .unwrap();
        // A low-priority task whose deadline cannot hold next to `a`.
        let report = m
            .propose_update(UpdateRequest {
                label: "bad-timing".into(),
                add: contracts(
                    "component b {\n task t { period 10ms wcet 4ms deadline 4ms priority 5 }\n}",
                ),
                remove: vec![],
            })
            .unwrap();
        assert!(!report.accepted);
        assert_eq!(report.rejecting_viewpoints(), vec!["timing"]);
        assert_eq!(m.current().components.len(), 1, "old config kept");
    }

    #[test]
    fn rejects_safety_violation() {
        let mut m = mcc();
        let report = m
            .propose_update(UpdateRequest {
                label: "unsafe".into(),
                add: contracts(
                    "component cheap_brake {\n asil A\n provides actuator.brake\n}\n\
                     component pilot {\n asil D\n requires actuator.brake\n}",
                ),
                remove: vec![],
            })
            .unwrap();
        assert!(!report.accepted);
        assert!(report.rejecting_viewpoints().contains(&"safety"));
    }

    #[test]
    fn rejects_security_violation() {
        let mut m = mcc();
        let report = m
            .propose_update(UpdateRequest {
                label: "evil-app".into(),
                add: contracts(
                    "component brake {\n provides actuator.brake critical\n}\n\
                     component app {\n domain untrusted\n requires actuator.brake\n}",
                ),
                remove: vec![],
            })
            .unwrap();
        assert!(!report.accepted);
        assert!(report.rejecting_viewpoints().contains(&"security"));
    }

    #[test]
    fn refinement_errors_are_hard_errors() {
        let mut m = mcc();
        m.propose_update(UpdateRequest {
            label: "base".into(),
            add: contracts("component a {\n}"),
            remove: vec![],
        })
        .unwrap();
        let dup = m.propose_update(UpdateRequest {
            label: "dup".into(),
            add: contracts("component a {\n}"),
            remove: vec![],
        });
        assert_eq!(
            dup.unwrap_err(),
            IntegrationError::DuplicateComponent("a".into())
        );
        let ghost = m.propose_update(UpdateRequest {
            label: "ghost".into(),
            add: vec![],
            remove: vec!["ghost".into()],
        });
        assert_eq!(
            ghost.unwrap_err(),
            IntegrationError::UnknownComponent("ghost".into())
        );
    }

    #[test]
    fn mapping_spills_to_second_pe() {
        let mut m = mcc();
        // Each component uses 60% of a PE: two must land on different PEs.
        let report = m
            .propose_update(UpdateRequest {
                label: "two-heavies".into(),
                add: contracts(
                    "component h1 {\n task t { period 10ms wcet 6ms priority 1 }\n}\n\
                     component h2 {\n task t { period 10ms wcet 6ms priority 1 }\n}",
                ),
                remove: vec![],
            })
            .unwrap();
        assert!(report.accepted, "{report}");
        let placement = m.placement();
        assert_ne!(placement["h1"], placement["h2"]);
    }

    #[test]
    fn infeasible_mapping_is_reported() {
        let mut m = mcc();
        let err = m.propose_update(UpdateRequest {
            label: "impossible".into(),
            add: contracts("component x {\n memory 99999\n}"),
            remove: vec![],
        });
        assert_eq!(
            err.unwrap_err(),
            IntegrationError::NoFeasibleMapping("x".into())
        );
    }

    #[test]
    fn rollback_restores_previous_config() {
        let mut m = mcc();
        m.propose_update(UpdateRequest {
            label: "v1".into(),
            add: contracts("component a {\n}"),
            remove: vec![],
        })
        .unwrap();
        m.propose_update(UpdateRequest {
            label: "v2".into(),
            add: contracts("component b {\n}"),
            remove: vec![],
        })
        .unwrap();
        assert_eq!(m.current().components.len(), 2);
        m.rollback().unwrap();
        assert_eq!(m.current().components.len(), 1);
        m.rollback().unwrap();
        assert_eq!(m.current().components.len(), 0);
        assert_eq!(m.rollback(), Err(IntegrationError::NoHistory));
    }

    #[test]
    fn rollback_on_empty_history_is_an_error_and_keeps_current() {
        let mut m = mcc();
        assert_eq!(m.rollback(), Err(IntegrationError::NoHistory));
        assert!(m.current().components.is_empty());
        // A baseline installation also offers nothing to roll back to.
        let mut with_base = mcc();
        with_base
            .propose_update(UpdateRequest {
                label: "v1".into(),
                add: contracts("component a {\n}"),
                remove: vec![],
            })
            .unwrap();
        let base = with_base.current().clone();
        let mut m = mcc();
        m.install_baseline(base);
        assert_eq!(m.history_depth(), 0);
        assert_eq!(m.rollback(), Err(IntegrationError::NoHistory));
        assert!(m.current().component("a").is_some(), "baseline survives");
    }

    #[test]
    fn rejecting_viewpoints_order_is_battery_order() {
        // First-fit mapping enforces the resource bounds itself, so a
        // configuration violating *every* viewpoint can only arrive as an
        // installed baseline (e.g. drifted hardware after an in-field
        // change). It violates resources (memory), timing (overload),
        // safety (ASIL-D requirement on an ASIL-A provider) and security
        // (untrusted influence on a critical service) at once.
        let broken = contracts(
            "component big {\n memory 5000\n task t { period 10ms wcet 6ms priority 1 }\n}\n\
             component late {\n asil A\n provides actuator.brake critical\n \
             task t { period 10ms wcet 6ms deadline 1ms priority 5 }\n}\n\
             component autopilot {\n asil D\n requires actuator.brake\n}\n\
             component pilot {\n domain untrusted\n requires actuator.brake\n}",
        );
        let mut baseline = CandidateConfig::default();
        for c in broken {
            baseline.mapping.insert(c.name.clone(), 0);
            baseline.components.push(c);
        }
        let mut m = mcc();
        m.install_baseline(baseline);
        let report = m
            .propose_update(UpdateRequest {
                label: "probe".into(),
                add: contracts("component probe {\n}"),
                remove: vec![],
            })
            .unwrap();
        assert!(!report.accepted);
        assert_eq!(
            report.rejecting_viewpoints(),
            vec!["resources", "timing", "safety", "security"],
            "rejections surface in the fixed battery order"
        );
    }

    #[test]
    fn repeated_propose_rollback_cycles_stay_consistent() {
        let mut m = mcc();
        m.propose_update(UpdateRequest {
            label: "base".into(),
            add: contracts("component a {\n task t { period 10ms wcet 1ms priority 1 }\n}"),
            remove: vec![],
        })
        .unwrap();
        let base_placement = m.placement();
        for round in 0..3 {
            let report = m
                .propose_update(UpdateRequest {
                    label: format!("swap-{round}"),
                    add: contracts(
                        "component a2 {\n task t { period 20ms wcet 1ms priority 1 }\n}",
                    ),
                    remove: vec!["a".into()],
                })
                .unwrap();
            assert!(report.accepted, "round {round}: {report}");
            assert!(m.current().component("a2").is_some());
            assert!(m.current().component("a").is_none());
            assert_eq!(m.placement()["a2"], "ecu0");
            m.rollback().unwrap();
            assert!(m.current().component("a").is_some());
            assert!(m.current().component("a2").is_none());
            assert_eq!(m.placement(), base_placement, "round {round}");
        }
        assert_eq!(m.history_depth(), 1, "cycles net out to the base commit");
    }

    #[test]
    fn removal_then_update() {
        let mut m = mcc();
        m.propose_update(UpdateRequest {
            label: "v1".into(),
            add: contracts("component a {\n provides svc.a\n}"),
            remove: vec![],
        })
        .unwrap();
        let report = m
            .propose_update(UpdateRequest {
                label: "replace-a".into(),
                add: contracts("component a2 {\n provides svc.a\n}"),
                remove: vec!["a".into()],
            })
            .unwrap();
        assert!(report.accepted);
        assert!(m.current().component("a").is_none());
        assert!(m.current().component("a2").is_some());
    }
}
