//! The contracting language.
//!
//! Sec. II-A: *"The requirements for these viewpoints – e.g. a safety-level
//! requirement or a real-time constraint – are collected for each component
//! in a so-called contracting language, which serves as an input to the
//! MCC."* This module defines the typed contract model and a line-oriented
//! text syntax with a hand-written recursive-descent parser:
//!
//! ```text
//! component acc_controller {
//!   asil C
//!   domain trusted
//!   memory 128
//!   provides control.acc
//!   requires sensor.radar rate 100
//!   task ctl { period 20ms wcet 4ms deadline 20ms priority 3 }
//!   frame status { id 0x120 period 100ms payload 8 }
//! }
//! ```

use std::fmt;

use saav_sim::time::Duration;

/// Automotive safety integrity level, ordered QM < A < B < C < D.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Asil {
    /// Quality managed (no safety requirement).
    Qm,
    /// ASIL A.
    A,
    /// ASIL B.
    B,
    /// ASIL C.
    C,
    /// ASIL D.
    D,
}

impl fmt::Display for Asil {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Asil::Qm => "QM",
            Asil::A => "A",
            Asil::B => "B",
            Asil::C => "C",
            Asil::D => "D",
        };
        f.write_str(s)
    }
}

impl Asil {
    /// Parses an ASIL label.
    pub fn parse(s: &str) -> Option<Asil> {
        match s.to_ascii_uppercase().as_str() {
            "QM" => Some(Asil::Qm),
            "A" => Some(Asil::A),
            "B" => Some(Asil::B),
            "C" => Some(Asil::C),
            "D" => Some(Asil::D),
            _ => None,
        }
    }

    /// The ASIL each channel must reach when a requirement is decomposed
    /// over two independent redundant channels (ISO 26262-9 style:
    /// D → B(D), C → A(C), B → A(B), A/QM unchanged).
    pub fn decomposed(self) -> Asil {
        match self {
            Asil::D => Asil::B,
            Asil::C | Asil::B => Asil::A,
            Asil::A => Asil::A,
            Asil::Qm => Asil::Qm,
        }
    }
}

/// Trust domain of a component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TrustDomain {
    /// Vetted, OEM-signed code.
    #[default]
    Trusted,
    /// Third-party or field-updated code with no trust assumption.
    Untrusted,
}

/// A provided service, possibly marked safety/security critical.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProvidedService {
    /// Service name.
    pub name: String,
    /// Whether the service is critical (e.g. an actuator path): untrusted
    /// components must have no influence path to it.
    pub critical: bool,
}

/// A required service with an optional contracted message rate.
#[derive(Debug, Clone, PartialEq)]
pub struct RequiredService {
    /// Service name.
    pub name: String,
    /// Contracted nominal call rate (calls/s) for the communication
    /// monitor; `None` leaves the channel unprofiled.
    pub rate_per_sec: Option<f64>,
}

/// A real-time task contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskContract {
    /// Task name (unique within the component).
    pub name: String,
    /// Activation period.
    pub period: Duration,
    /// Worst-case execution time.
    pub wcet: Duration,
    /// Relative deadline.
    pub deadline: Duration,
    /// Static priority (lower = more important).
    pub priority: u32,
}

/// A CAN frame stream contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameContract {
    /// Stream name (unique within the component).
    pub name: String,
    /// CAN identifier (doubles as priority).
    pub can_id: u32,
    /// Transmission period.
    pub period: Duration,
    /// Payload bytes (0–8).
    pub payload: u8,
}

/// A full component contract.
#[derive(Debug, Clone, Default)]
pub struct Contract {
    /// Component name.
    pub name: String,
    /// Safety integrity level.
    pub asil: Option<Asil>,
    /// Trust domain.
    pub domain: TrustDomain,
    /// Memory demand in KiB.
    pub memory_kib: u32,
    /// Provided services.
    pub provides: Vec<ProvidedService>,
    /// Required services.
    pub requires: Vec<RequiredService>,
    /// Real-time tasks.
    pub tasks: Vec<TaskContract>,
    /// CAN frame streams.
    pub frames: Vec<FrameContract>,
}

impl Contract {
    /// Effective ASIL for safety analysis: untrusted components are capped
    /// at QM regardless of their claimed level.
    pub fn effective_asil(&self) -> Asil {
        match self.domain {
            TrustDomain::Trusted => self.asil.unwrap_or(Asil::Qm),
            TrustDomain::Untrusted => Asil::Qm,
        }
    }
}

/// A parse error with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Line the error was detected on.
    pub line: usize,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn parse_duration(tok: &str, line: usize) -> Result<Duration, ParseError> {
    let err = || ParseError {
        line,
        message: format!("invalid duration `{tok}` (expected e.g. 10ms, 500us, 1s)"),
    };
    let (num, unit) = tok.split_at(
        tok.find(|c: char| c.is_ascii_alphabetic())
            .ok_or_else(err)?,
    );
    let value: u64 = num.parse().map_err(|_| err())?;
    match unit {
        "ns" => Ok(Duration::from_nanos(value)),
        "us" => Ok(Duration::from_micros(value)),
        "ms" => Ok(Duration::from_millis(value)),
        "s" => Ok(Duration::from_secs(value)),
        _ => Err(err()),
    }
}

fn parse_u32(tok: &str, line: usize) -> Result<u32, ParseError> {
    let parsed = if let Some(hex) = tok.strip_prefix("0x") {
        u32::from_str_radix(hex, 16)
    } else {
        tok.parse()
    };
    parsed.map_err(|_| ParseError {
        line,
        message: format!("invalid integer `{tok}`"),
    })
}

/// Key-value pairs inside `{ ... }` blocks on one line.
fn parse_kv_block<'a>(
    tokens: &'a [&'a str],
    line: usize,
) -> Result<Vec<(&'a str, &'a str)>, ParseError> {
    if tokens.first() != Some(&"{") || tokens.last() != Some(&"}") {
        return Err(ParseError {
            line,
            message: "expected `{ key value ... }` on one line".into(),
        });
    }
    let inner = &tokens[1..tokens.len() - 1];
    if !inner.len().is_multiple_of(2) {
        return Err(ParseError {
            line,
            message: "expected key/value pairs".into(),
        });
    }
    Ok(inner.chunks(2).map(|c| (c[0], c[1])).collect())
}

/// Parses a contract document (one or more `component` blocks).
///
/// # Errors
/// [`ParseError`] with the offending line number.
pub fn parse_contracts(input: &str) -> Result<Vec<Contract>, ParseError> {
    let mut contracts = Vec::new();
    let mut current: Option<Contract> = None;
    for (idx, raw_line) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw_line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match (tokens[0], &mut current) {
            ("component", None) => {
                if tokens.len() != 3 || tokens[2] != "{" {
                    return Err(ParseError {
                        line: line_no,
                        message: "expected `component <name> {`".into(),
                    });
                }
                current = Some(Contract {
                    name: tokens[1].to_string(),
                    memory_kib: 64,
                    ..Contract::default()
                });
            }
            ("component", Some(_)) => {
                return Err(ParseError {
                    line: line_no,
                    message: "nested `component` blocks are not allowed".into(),
                })
            }
            ("}", Some(_)) => {
                contracts.push(current.take().expect("checked"));
            }
            (_, None) => {
                return Err(ParseError {
                    line: line_no,
                    message: format!("`{}` outside a component block", tokens[0]),
                })
            }
            ("asil", Some(c)) => {
                let level = tokens
                    .get(1)
                    .and_then(|t| Asil::parse(t))
                    .ok_or(ParseError {
                        line: line_no,
                        message: "expected `asil QM|A|B|C|D`".into(),
                    })?;
                c.asil = Some(level);
            }
            ("domain", Some(c)) => {
                c.domain = match tokens.get(1).copied() {
                    Some("trusted") => TrustDomain::Trusted,
                    Some("untrusted") => TrustDomain::Untrusted,
                    _ => {
                        return Err(ParseError {
                            line: line_no,
                            message: "expected `domain trusted|untrusted`".into(),
                        })
                    }
                };
            }
            ("memory", Some(c)) => {
                c.memory_kib = parse_u32(tokens.get(1).copied().unwrap_or(""), line_no)?;
            }
            ("provides", Some(c)) => {
                let name = tokens.get(1).copied().ok_or(ParseError {
                    line: line_no,
                    message: "expected `provides <service> [critical]`".into(),
                })?;
                let critical = tokens.get(2) == Some(&"critical");
                c.provides.push(ProvidedService {
                    name: name.to_string(),
                    critical,
                });
            }
            ("requires", Some(c)) => {
                let name = tokens.get(1).copied().ok_or(ParseError {
                    line: line_no,
                    message: "expected `requires <service> [rate <per-sec>]`".into(),
                })?;
                let rate = if tokens.get(2) == Some(&"rate") {
                    let r: f64 = tokens
                        .get(3)
                        .and_then(|t| t.parse().ok())
                        .ok_or(ParseError {
                            line: line_no,
                            message: "expected numeric rate".into(),
                        })?;
                    Some(r)
                } else {
                    None
                };
                c.requires.push(RequiredService {
                    name: name.to_string(),
                    rate_per_sec: rate,
                });
            }
            ("task", Some(c)) => {
                let name = tokens.get(1).copied().ok_or(ParseError {
                    line: line_no,
                    message: "expected `task <name> { ... }`".into(),
                })?;
                let kv = parse_kv_block(&tokens[2..], line_no)?;
                let mut task = TaskContract {
                    name: name.to_string(),
                    period: Duration::ZERO,
                    wcet: Duration::ZERO,
                    deadline: Duration::ZERO,
                    priority: 10,
                };
                for (k, v) in kv {
                    match k {
                        "period" => task.period = parse_duration(v, line_no)?,
                        "wcet" => task.wcet = parse_duration(v, line_no)?,
                        "deadline" => task.deadline = parse_duration(v, line_no)?,
                        "priority" => task.priority = parse_u32(v, line_no)?,
                        _ => {
                            return Err(ParseError {
                                line: line_no,
                                message: format!("unknown task attribute `{k}`"),
                            })
                        }
                    }
                }
                if task.period.is_zero() || task.wcet.is_zero() {
                    return Err(ParseError {
                        line: line_no,
                        message: "task needs non-zero period and wcet".into(),
                    });
                }
                if task.deadline.is_zero() {
                    task.deadline = task.period;
                }
                c.tasks.push(task);
            }
            ("frame", Some(c)) => {
                let name = tokens.get(1).copied().ok_or(ParseError {
                    line: line_no,
                    message: "expected `frame <name> { ... }`".into(),
                })?;
                let kv = parse_kv_block(&tokens[2..], line_no)?;
                let mut frame = FrameContract {
                    name: name.to_string(),
                    can_id: 0x7FF,
                    period: Duration::ZERO,
                    payload: 8,
                };
                for (k, v) in kv {
                    match k {
                        "id" => frame.can_id = parse_u32(v, line_no)?,
                        "period" => frame.period = parse_duration(v, line_no)?,
                        "payload" => {
                            frame.payload = parse_u32(v, line_no)? as u8;
                            if frame.payload > 8 {
                                return Err(ParseError {
                                    line: line_no,
                                    message: "payload above 8 bytes".into(),
                                });
                            }
                        }
                        _ => {
                            return Err(ParseError {
                                line: line_no,
                                message: format!("unknown frame attribute `{k}`"),
                            })
                        }
                    }
                }
                if frame.period.is_zero() {
                    return Err(ParseError {
                        line: line_no,
                        message: "frame needs a non-zero period".into(),
                    });
                }
                c.frames.push(frame);
            }
            (other, Some(_)) => {
                return Err(ParseError {
                    line: line_no,
                    message: format!("unknown directive `{other}`"),
                })
            }
        }
    }
    if current.is_some() {
        return Err(ParseError {
            line: input.lines().count(),
            message: "unterminated component block".into(),
        });
    }
    Ok(contracts)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# The ACC controller's contract.
component acc_controller {
  asil C
  domain trusted
  memory 128
  provides control.acc
  requires sensor.radar rate 100
  requires actuator.powertrain
  task ctl { period 20ms wcet 4ms deadline 20ms priority 3 }
  frame status { id 0x120 period 100ms payload 8 }
}

component infotainment {
  domain untrusted
  memory 512
  requires control.acc
}
"#;

    #[test]
    fn parses_full_document() {
        let contracts = parse_contracts(SAMPLE).unwrap();
        assert_eq!(contracts.len(), 2);
        let acc = &contracts[0];
        assert_eq!(acc.name, "acc_controller");
        assert_eq!(acc.asil, Some(Asil::C));
        assert_eq!(acc.memory_kib, 128);
        assert_eq!(acc.provides.len(), 1);
        assert_eq!(acc.requires.len(), 2);
        assert_eq!(acc.requires[0].rate_per_sec, Some(100.0));
        assert_eq!(acc.requires[1].rate_per_sec, None);
        let task = &acc.tasks[0];
        assert_eq!(task.period, Duration::from_millis(20));
        assert_eq!(task.wcet, Duration::from_millis(4));
        assert_eq!(task.priority, 3);
        let frame = &acc.frames[0];
        assert_eq!(frame.can_id, 0x120);
        assert_eq!(frame.payload, 8);
        let info = &contracts[1];
        assert_eq!(info.domain, TrustDomain::Untrusted);
        assert_eq!(info.effective_asil(), Asil::Qm);
    }

    #[test]
    fn deadline_defaults_to_period() {
        let src = "component x {\n task t { period 10ms wcet 1ms }\n}";
        let c = parse_contracts(src).unwrap();
        assert_eq!(c[0].tasks[0].deadline, Duration::from_millis(10));
    }

    #[test]
    fn critical_service_marker() {
        let src = "component brake {\n provides actuator.brake.rear critical\n}";
        let c = parse_contracts(src).unwrap();
        assert!(c[0].provides[0].critical);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let src = "component x {\n  asil Z\n}";
        let err = parse_contracts(src).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("asil"));
    }

    #[test]
    fn unterminated_block_rejected() {
        let err = parse_contracts("component x {\n asil A").unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn directive_outside_block_rejected() {
        let err = parse_contracts("asil A").unwrap_err();
        assert_eq!(err.line, 1);
    }

    #[test]
    fn bad_duration_rejected() {
        let err = parse_contracts("component x {\n task t { period 10 wcet 1ms }\n}").unwrap_err();
        assert!(err.message.contains("duration"));
    }

    #[test]
    fn zero_wcet_rejected() {
        let err =
            parse_contracts("component x {\n task t { period 10ms wcet 0ms }\n}").unwrap_err();
        assert!(err.message.contains("non-zero"));
    }

    #[test]
    fn asil_ordering_and_decomposition() {
        assert!(Asil::Qm < Asil::A && Asil::A < Asil::D);
        assert_eq!(Asil::D.decomposed(), Asil::B);
        assert_eq!(Asil::C.decomposed(), Asil::A);
        assert_eq!(Asil::B.decomposed(), Asil::A);
        assert_eq!(Asil::Qm.decomposed(), Asil::Qm);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let src = "# top comment\n\ncomponent x { # trailing\n}\n";
        assert_eq!(parse_contracts(src).unwrap().len(), 1);
    }
}
