//! Offline shim for the subset of the `rand` 0.8 API used by this workspace.
//!
//! The build environment has no network access to crates.io, so this local
//! path dependency stands in for the real crate. It provides [`rngs::SmallRng`]
//! (backed by xoshiro256++ seeded via SplitMix64), the [`Rng`], [`RngCore`]
//! and [`SeedableRng`] traits, and uniform range sampling — exactly the
//! surface `saav-sim`'s deterministic RNG wrapper needs. Streams are
//! deterministic per seed but are not bit-compatible with upstream `rand`.

#![warn(missing_docs)]

/// Core trait for random number generators: raw integer and byte output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// RNGs that can be constructed deterministically from a seed.
pub trait SeedableRng: Sized {
    /// Creates the RNG from a 64-bit seed; equal seeds give equal streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's full range.
pub trait Standard {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges (`lo..hi`, `lo..=hi`) that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add(uniform_u128(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width u128 range cannot occur for <=64-bit types.
                    unreachable!("range span overflow");
                }
                lo.wrapping_add(uniform_u128(rng, span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform value in `[0, span)` by rejection sampling on 64-bit words.
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0 && span <= (1u128 << 64));
    let span64 = span as u64; // span == 2^64 wraps to 0, handled below.
    if span64 == 0 {
        return rng.next_u64() as u128;
    }
    // Rejection zone keeps the distribution exactly uniform.
    let zone = u64::MAX - (u64::MAX % span64 + 1) % span64;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return (v % span64) as u128;
        }
    }
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        let v = self.start + (self.end - self.start) * u;
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * f64::sample(rng)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + (self.end - self.start) * f32::sample(rng);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Convenience extension trait with typed sampling helpers.
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        f64::sample(self) < p
    }

    /// Uniform sample of the whole type range (floats: `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic RNG (xoshiro256++, SplitMix64-seeded).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: u64 = rng.gen_range(10u64..=20);
            assert!((10..=20).contains(&x));
            let y: usize = rng.gen_range(0..7usize);
            assert!(y < 7);
            let f: f64 = rng.gen_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn unit_float_in_half_open_interval() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let freq = hits as f64 / 20_000.0;
        assert!((freq - 0.25).abs() < 0.02, "freq {freq}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
