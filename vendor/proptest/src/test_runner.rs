//! Deterministic case generation for the [`proptest!`](crate::proptest) macro.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// Marker returned by `prop_assume!` when a sampled case is discarded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rejected;

/// A small deterministic RNG (the vendored [`SmallRng`] seeded from the test
/// name) that drives strategy sampling. Equal names give equal case streams,
/// so a failing case reproduces on re-run.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// Creates an RNG whose stream is a pure function of `name`.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name; SmallRng spreads the state from there.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: SmallRng::seed_from_u64(h),
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    pub fn uniform_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "empty range");
        let span = ((hi - lo) as u64).wrapping_add(1);
        if span == 0 {
            return self.next_u64() as usize;
        }
        let zone = u64::MAX - (u64::MAX % span + 1) % span;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return lo + (v % span) as usize;
            }
        }
    }
}
