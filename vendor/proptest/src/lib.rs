//! Offline shim for the subset of the `proptest` API used by this
//! workspace's property tests.
//!
//! The build environment has no network access to crates.io, so this local
//! path dependency stands in for the real crate. It keeps the same
//! programming model — the [`proptest!`] macro with `arg in strategy`
//! bindings, range/`any`/`collection::vec`/`option::of` strategies, and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` assertion macros — but
//! with a fixed-seed random search (no shrinking). Each test runs 256
//! accepted cases drawn from a stream seeded by the test's name, so failures
//! are reproducible run-to-run.

#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Strategies over collections (`vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a strategy for vectors whose length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.uniform_usize(self.size.lo, self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Strategies over `Option` (`of`).
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Option`s of an inner strategy's values.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Creates a strategy that yields `None` about a quarter of the time and
    /// `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::{Rejected, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over 256 sampled cases.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                const CASES: u32 = 256;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                while accepted < CASES {
                    attempts += 1;
                    assert!(
                        attempts <= CASES * 16,
                        "prop_assume rejected too many cases ({} accepted of {} attempts)",
                        accepted,
                        attempts,
                    );
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                    let case = || -> ::core::result::Result<(), $crate::test_runner::Rejected> {
                        $body
                        ::core::result::Result::Ok(())
                    };
                    let outcome = case();
                    if outcome.is_ok() {
                        accepted += 1;
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Discards the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_sample_in_bounds(x in 3u16..10, y in 0.0f64..=1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.0..=1.0).contains(&y));
        }

        #[test]
        fn vec_respects_size_range(v in crate::collection::vec(any::<u8>(), 2..=5)) {
            prop_assert!(v.len() >= 2 && v.len() <= 5);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn option_of_yields_both_variants(o in crate::option::of(0u8..10)) {
            if let Some(v) = o {
                prop_assert!(v < 10);
            }
        }
    }

    #[test]
    fn test_rng_is_deterministic_per_name() {
        let mut a = TestRng::for_test("same");
        let mut b = TestRng::for_test("same");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_test("other");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
