//! Value-generation strategies for the [`proptest!`](crate::proptest) macro.

use crate::test_runner::TestRng;

/// A source of random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value from the strategy.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1) as u64;
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform value in `[0, span)`; `span == 0` means the full 64-bit range.
fn uniform_u64(rng: &mut TestRng, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    let zone = u64::MAX - (u64::MAX % span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let v = self.start + (self.end - self.start) * rng.unit_f64();
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for core::ops::RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty strategy range");
        lo + (hi - lo) * rng.unit_f64()
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        let v = self.start + (self.end - self.start) * rng.unit_f64() as f32;
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Types with a canonical "whole domain" strategy, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// Draws one value covering the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values only; the tests in this workspace expect ordinary
        // arithmetic, not NaN/inf edge cases.
        (rng.unit_f64() - 0.5) * 2e9
    }
}

/// Strategy over a type's whole domain; see [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

/// Creates the canonical strategy for `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: core::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
