//! Offline shim for the subset of the `criterion` API used by this
//! workspace's bench targets.
//!
//! The build environment has no network access to crates.io, so this local
//! path dependency stands in for the real crate. It implements the same
//! programming model — [`Criterion`], benchmark groups, [`BenchmarkId`],
//! [`criterion_group!`]/[`criterion_main!`] — with a simple wall-clock
//! measurement loop: each benchmark is warmed up briefly, then timed for a
//! fixed number of samples and reported as mean ns/iter on stdout. The
//! statistics are deliberately minimal; the goal is that `cargo bench`
//! compiles and produces stable, comparable numbers without the real
//! criterion dependency tree.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// An identifier for a parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new<S: Into<String>, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from just a parameter value.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Calls `routine` repeatedly and records the total elapsed time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Whether the bench binary was invoked with `--test` (criterion's smoke
/// mode): every benchmark runs exactly once, untimed — CI uses this to
/// verify bench targets execute without paying for measurement loops.
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

fn run_one(name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    if test_mode() {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("bench: {name:<48} ok (--test mode, 1 iter)");
        return;
    }
    // Calibrate: grow the iteration count until one sample takes >= 1 ms,
    // so per-iteration timing noise stays bounded for fast routines.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
            break;
        }
        iters *= 4;
    }

    let samples = sample_size.max(1);
    let mut totals = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        totals.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    totals.sort_by(|a, b| a.total_cmp(b));
    let mean = totals.iter().sum::<f64>() / totals.len() as f64;
    let median = totals[totals.len() / 2];
    println!("bench: {name:<48} {mean:>14.1} ns/iter (median {median:.1}, samples {samples}, iters {iters})");
}

/// A named collection of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples taken per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the target measurement time (accepted for API parity; the shim
    /// sizes its measurement loop automatically).
    pub fn measurement_time(&mut self, _dur: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark under `group_name/id`.
    pub fn bench_function<F, I>(&mut self, id: I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
        I: fmt::Display,
    {
        let name = format!("{}/{}", self.name, id);
        run_one(&name, self.sample_size, &mut f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<F, I, P>(&mut self, id: I, input: &P, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &P),
        I: fmt::Display,
        P: ?Sized,
    {
        let name = format!("{}/{}", self.name, id);
        run_one(&name, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Finishes the group (no-op in the shim; exists for API parity).
    pub fn finish(self) {
        let _ = self.criterion;
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, 10, &mut f);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` function, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter(32).to_string(), "32");
    }

    #[test]
    fn bencher_runs_requested_iterations() {
        let mut count = 0u64;
        let mut b = Bencher {
            iters: 100,
            elapsed: Duration::ZERO,
        };
        b.iter(|| count += 1);
        assert_eq!(count, 100);
    }
}
