//! # saav — Self-Awareness in Autonomous Automotive Systems
//!
//! Umbrella crate for the reproduction of Schlatow, Möstl, Ernst, Nolte,
//! Jatzkowski, Maurer, Herber & Herkersdorf, *Self-awareness in autonomous
//! automotive systems* (DATE 2017). It re-exports every layer of the stack:
//!
//! | crate | role |
//! |---|---|
//! | [`sim`] | discrete-event kernel: virtual time, queues, RNG, traces |
//! | [`hw`] | platform: PEs, DVFS, thermal/power models, fault injection |
//! | [`can`] | CAN bus + the virtualized (PF/VF) CAN controller of Fig. 2 |
//! | [`rte`] | microkernel-style execution domain with budgets and capabilities |
//! | [`timing`] | compositional WCRT analysis (CPU + CAN) |
//! | [`mcc`] | model domain: contracts, viewpoints, integration, FMEA |
//! | [`monitor`] | execution/heartbeat/plausibility/access monitors |
//! | [`learn`] | learned self-awareness: quantizers, state vocabulary, DBN transitions, online abnormality scoring |
//! | [`skills`] | skill & ability graphs (Sec. IV), degradation tactics |
//! | [`vehicle`] | longitudinal plant, degradable sensors, ACC function |
//! | [`platoon`] | Byzantine agreement, trust, risk-aware routing |
//! | [`core`] | cross-layer coordination, scenario engine, vehicle + fleet runner (Sec. V) |
//!
//! ## Quick start
//!
//! ```
//! use saav::core::{ResponseStrategy, Scenario, SelfAwareVehicle};
//!
//! // Run the paper's intrusion scenario with cross-layer self-awareness.
//! let outcome = SelfAwareVehicle::run(Scenario::intrusion(
//!     ResponseStrategy::CrossLayer,
//!     42,
//! ));
//! assert!(!outcome.collision);
//! assert!(outcome.first_detection.is_some());
//! ```
//!
//! See `examples/` for scenario walkthroughs and
//! `cargo run -p saav-bench --bin repro -- all` for every reproduced table.

#![warn(missing_docs)]

pub use saav_can as can;
pub use saav_core as core;
pub use saav_hw as hw;
pub use saav_learn as learn;
pub use saav_mcc as mcc;
pub use saav_monitor as monitor;
pub use saav_platoon as platoon;
pub use saav_rte as rte;
pub use saav_sim as sim;
pub use saav_skills as skills;
pub use saav_timing as timing;
pub use saav_vehicle as vehicle;
