//! Quickstart: the smallest end-to-end tour of the SAAV stack.
//!
//! Builds the paper's ACC skill graph, degrades a sensor, watches the
//! ability level propagate, lets the decision policy pick a driving mode,
//! and runs one full self-aware scenario.
//!
//! Run with: `cargo run --example quickstart`

use saav::core::{ResponseStrategy, Scenario, SelfAwareVehicle};
use saav::skills::ability::{AbilityGraph, AggregateOp, Thresholds};
use saav::skills::acc::build_acc_graph;
use saav::skills::decision::ModePolicy;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The ACC skill graph from Sec. IV of the paper.
    let (graph, nodes) = build_acc_graph()?;
    println!(
        "ACC skill graph: {} nodes, root = `{}`",
        graph.len(),
        graph.name(graph.validate()?)
    );

    // 2. Instantiate it as an ability graph and degrade the radar.
    let mut abilities = AbilityGraph::instantiate(graph, AggregateOp::Min, Thresholds::default())?;
    abilities.set_measured(nodes.env_sensors, 0.55); // fog!
    let changes = abilities.propagate();
    println!("\nfog degrades the radar to 0.55:");
    for c in &changes {
        println!("  {} -> {:?} (level {:.2})", c.name, c.to, c.level);
    }

    // 3. The decision policy maps the root ability to a driving mode.
    let mut policy = ModePolicy::with_defaults();
    let mode = policy.update(abilities.root_level());
    println!(
        "\nroot ability {:.2} => mode: {mode}",
        abilities.root_level()
    );

    // 4. A full closed-loop scenario: the paper's rear-brake intrusion with
    //    cross-layer response.
    println!("\nrunning the intrusion scenario (cross-layer response)...");
    let outcome = SelfAwareVehicle::run(Scenario::intrusion(ResponseStrategy::CrossLayer, 42));
    println!("  first detection : {:?}", outcome.first_detection);
    println!("  actions taken   : {:?}", outcome.actions);
    println!("  distance driven : {:.0} m", outcome.distance_m);
    println!("  final mode      : {}", outcome.final_mode);
    println!("  collision       : {}", outcome.collision);
    Ok(())
}
