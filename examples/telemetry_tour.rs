//! A tour of the telemetry layer: a platoon liar, fully observed.
//!
//! The 5-member platoon-liar scenario runs with a telemetry sink
//! mounted. The sink records every engine event (anomalies, escalations,
//! ejections, V2V traffic) as a typed, virtual-time-stamped trace, keeps
//! the metrics registry (counters, detection-latency histogram) and the
//! per-layer virtual-time profile — then exports the run as
//! `telemetry_tour_trace.json` (open at <https://ui.perfetto.dev>) and
//! `telemetry_tour_metrics.csv`.
//!
//! Run with: `cargo run --example telemetry_tour`

use saav::core::csv::telemetry_csv;
use saav::core::runner;
use saav::core::scenario::{ResponseStrategy, ScenarioFamily};
use saav::core::telemetry::{Counter, Stage, Telemetry};

fn main() {
    let scenario = ScenarioFamily::PlatoonLiarLow.build(ResponseStrategy::CrossLayer, 1);
    println!(
        "== observing `{}` with a telemetry sink mounted ==",
        scenario.label
    );

    let sink = Telemetry::default();
    let out = runner::run_observed(scenario, None, &sink);

    println!("\n-- escalation trace (virtual time, canonical order) --");
    for rec in sink.events() {
        println!(
            "  t = {:>5.2} s   #{:<3} {}",
            rec.at.as_secs_f64(),
            rec.seq,
            rec.event.name()
        );
    }

    let snap = sink.snapshot();
    println!("\n-- registry counters --");
    for c in [
        Counter::AnomaliesRaised,
        Counter::EscalationsRouted,
        Counter::EscalationsResolved,
        Counter::PlatoonEjections,
        Counter::V2vSent,
        Counter::V2vDropped,
    ] {
        println!("  {:<22} {}", c.name(), snap.counter(c));
    }

    println!("\n-- per-layer virtual-time profile --");
    let total: u64 = Stage::ALL.iter().map(|&s| snap.stage_nanos_of(s)).sum();
    for &stage in &Stage::ALL {
        let calls = snap.stage_calls_of(stage);
        if calls == 0 {
            continue;
        }
        let ns = snap.stage_nanos_of(stage);
        println!(
            "  {:<10} {:>6} calls  {:>9} ns  {:>5.1}%",
            stage.name(),
            calls,
            ns,
            100.0 * ns as f64 / total as f64
        );
    }

    std::fs::write("telemetry_tour_trace.json", sink.chrome_trace_json()).expect("write trace");
    std::fs::write("telemetry_tour_metrics.csv", telemetry_csv(&snap)).expect("write csv");
    println!(
        "\nwrote telemetry_tour_trace.json ({} events — open at ui.perfetto.dev) \
         and telemetry_tour_metrics.csv",
        snap.events_recorded
    );
    assert!(!out.collision, "the observed platoon must survive the liar");
}
