//! ACC under sensor degradation: the ability graph vs the baselines.
//!
//! Drives the closed-loop vehicle into a fog bank while three detectors
//! watch the radar: the quality monitor feeding the ability graph (this
//! work), a SAFER-style heartbeat, and a RACE-style boundary check. The
//! timeline shows why the paper calls for graded data-quality assessment:
//! the baselines stay silent while perception quietly erodes.
//!
//! Run with: `cargo run --example acc_degradation`

use saav::monitor::signal::{BoundaryMonitor, HeartbeatMonitor, QualityMonitor};
use saav::sim::time::{Duration, Time};
use saav::skills::ability::{AbilityGraph, AggregateOp, Thresholds};
use saav::skills::acc::build_acc_graph;
use saav::vehicle::sensors::{SensorFault, Weather};
use saav::vehicle::traffic::LeadVehicle;
use saav::vehicle::world::VehicleWorld;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut world = VehicleWorld::new(7, 22.0, LeadVehicle::cruising(60.0, 22.0));
    let (graph, nodes) = build_acc_graph()?;
    let mut abilities = AbilityGraph::instantiate(graph, AggregateOp::Min, Thresholds::default())?;
    let mut quality = QualityMonitor::new("radar", 0.5, 5.0, 0.7);
    let mut heartbeat = HeartbeatMonitor::new("radar", Duration::from_millis(10), 5.0);
    let boundary = BoundaryMonitor::new("radar.range", 0.0, 200.0);

    println!("t[s]  fog   quality  root-ability  alerts");
    println!("------------------------------------------------");
    let dt = Duration::from_millis(10);
    let mut now = Time::ZERO;
    while now < Time::from_secs(90) {
        now += dt;
        // Fog builds from t=20s to t=60s.
        let fog = ((now.as_secs_f64() - 20.0) / 40.0).clamp(0.0, 1.0) * 0.85;
        world.weather = Weather::foggy(fog);
        world.step(dt);

        let mut alerts: Vec<String> = Vec::new();
        if world.radar.fault() != SensorFault::Dead {
            heartbeat.beat(now);
        }
        if let Some(a) = heartbeat.check(now) {
            alerts.push(format!("SAFER: {}", a.kind));
        }
        match world.last_radar() {
            Some(r) => {
                if let Some(a) = quality.observe(now, true, r.range_m - world.gap_m()) {
                    alerts.push(format!("ability: {}", a.kind));
                }
                if let Some(a) = boundary.observe(now, r.range_m) {
                    alerts.push(format!("RACE: {}", a.kind));
                }
            }
            None => {
                if world.gap_m() <= world.radar.max_range_m() * 0.9 {
                    if let Some(a) = quality.observe(now, false, 0.0) {
                        alerts.push(format!("ability: {}", a.kind));
                    }
                }
            }
        }
        abilities.set_measured(nodes.env_sensors, quality.quality());
        abilities.propagate();

        if now.as_millis().is_multiple_of(5_000) || !alerts.is_empty() {
            println!(
                "{:>4.1}  {:.2}  {:>7.2}  {:>12.2}  {}",
                now.as_secs_f64(),
                fog,
                quality.quality(),
                abilities.root_level(),
                alerts.join(", ")
            );
        }
    }
    println!("\nfinal ability by node:");
    let mut levels: Vec<(String, f64)> = abilities.levels_by_name().into_iter().collect();
    levels.sort_by(|a, b| a.0.cmp(&b.0));
    for (name, level) in levels {
        println!("  {name:<24} {level:.2}");
    }
    Ok(())
}
