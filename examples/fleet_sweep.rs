//! The fleet runner: one master seed, the whole scenario library, every
//! response strategy — batch-evaluated with fleet-level statistics.
//!
//! This is the scenario-sweep style evaluation the paper's claim calls
//! for: cross-layer self-awareness should pay off across *many* operating
//! conditions, not just a hand-picked demo. The sweep runs
//! `families × strategies` jobs across worker threads (deterministically —
//! the same master seed reproduces every run bit-for-bit regardless of
//! thread count) and prints the availability/risk aggregates per strategy.
//!
//! Run with: `cargo run --example fleet_sweep --release`
//!
//! The runner mounts a content-hashed result cache, so the demo sweeps
//! the grid twice: the cold pass simulates everything, the warm pass is
//! served entirely from memoized summaries and reproduces the cold
//! statistics bit for bit. Besides the human-readable report, the sweep
//! is exported as CSV (per-run records and per-strategy aggregates) and
//! as the compact columnar binary batch so downstream tooling can
//! consume it; `SAAV_THREADS` pins the worker count.

use saav::core::cache::ResultCache;
use saav::core::colstore::FleetColumns;
use saav::core::csv;
use saav::core::fleet::FleetRunner;
use saav::core::scenario::{ResponseStrategy, ScenarioFamily};

fn main() {
    let cache = ResultCache::in_memory();
    let fleet = FleetRunner::new(2024).with_cache(cache.clone());
    println!(
        "sweeping {} scenario families x {} strategies on {} worker thread(s)…\n",
        ScenarioFamily::ALL.len(),
        ResponseStrategy::ALL.len(),
        fleet.threads()
    );
    let started = std::time::Instant::now();
    let outcome = fleet.sweep(&ScenarioFamily::ALL, &ResponseStrategy::ALL, 1);
    let elapsed = started.elapsed();

    for rec in &outcome.records {
        let s = &rec.summary;
        let (detected, _) = s.fmt_detection();
        println!(
            "  {:<28} detected {:>7}  distance {:>6.0} m  mode {}",
            s.label, detected, s.distance_m, s.final_mode
        );
    }

    let stats = &outcome.stats;
    println!(
        "\n{} runs in {:.2?} ({:.1} scenarios/s)",
        stats.runs,
        elapsed,
        stats.runs as f64 / elapsed.as_secs_f64()
    );
    println!(
        "collision rate {:.3}; detection latency mean {:.1}s / p50 {:.1}s / p95 {:.1}s over {} detected runs",
        stats.collision_rate,
        stats.detection.mean_s,
        stats.detection.p50_s,
        stats.detection.p95_s,
        stats.detection.detected
    );
    for s in &stats.per_strategy {
        println!(
            "  {:<14} availability {:.3}  mean distance {:>6.0} m  collision rate {:.3}",
            format!("{:?}", s.strategy),
            s.availability,
            s.mean_distance_m,
            s.collision_rate
        );
    }
    println!("\nThe ordering the paper predicts holds over the whole library:");
    println!("single-layer handling maximizes raw distance, the objective layer");
    println!("minimizes it, and the cross-layer response keeps most of the");
    println!("mission while staying inside the derived capability envelope.");

    // Warm pass: the identical grid again, now answered from the cache.
    let warm_started = std::time::Instant::now();
    let warm = fleet.sweep(&ScenarioFamily::ALL, &ResponseStrategy::ALL, 1);
    let warm_elapsed = warm_started.elapsed();
    let cs = cache.stats();
    assert_eq!(
        warm.stats, outcome.stats,
        "warm sweep must be bit-identical"
    );
    println!(
        "\nwarm re-sweep: {} runs in {:.2?} ({} cache hits, {} misses) — \
         statistics bit-identical to the cold pass",
        warm.stats.runs, warm_elapsed, cs.hits, cs.misses
    );

    // Machine-consumable export: CSV per aggregation level, plus the
    // columnar binary batch (the compact form the stats path can read
    // back directly).
    let columns = FleetColumns::from_records(&outcome.records);
    let dir = std::path::Path::new("target");
    let _ = std::fs::create_dir_all(dir);
    for (name, content) in [
        (
            "fleet_sweep_runs.csv",
            csv::records_csv(&outcome.records).into_bytes(),
        ),
        (
            "fleet_sweep_strategies.csv",
            csv::strategy_csv(stats).into_bytes(),
        ),
        ("fleet_sweep.col", columns.to_bytes()),
    ] {
        let path = dir.join(name);
        match std::fs::write(&path, content) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
    }
}
