//! The thermal cross-layer chain of Sec. V.
//!
//! Ambient temperature ramps up; the platform throttles to protect the
//! silicon; execution slows; deadlines start missing. A platform-only
//! response ends there (misses persist); the cross-layer response lets the
//! ability layer shed control load (halved rates + speed cap) so the
//! throttled platform becomes schedulable again.
//!
//! Run with: `cargo run --example thermal_stress --release`

use saav::core::{ResponseStrategy, Scenario, SelfAwareVehicle};

fn main() {
    for strategy in [ResponseStrategy::SingleLayer, ResponseStrategy::CrossLayer] {
        let outcome = SelfAwareVehicle::run(Scenario::thermal(75.0, strategy, 7));
        println!("=== {strategy:?} ===");
        println!("t[s]   temp[C]  speed-factor  miss-rate");
        for (((t, miss), (_, temp)), (_, factor)) in outcome
            .miss_rate
            .iter()
            .zip(outcome.temp_c.iter())
            .zip(outcome.speed_factor.iter())
        {
            if t.as_millis() % 20_000 == 0 {
                println!(
                    "{:>5.0}  {:>7.1}  {:>12.2}  {:>9.3}",
                    t.as_secs_f64(),
                    temp,
                    factor,
                    miss
                );
            }
        }
        println!("actions: {:?}", outcome.actions);
        let peak = outcome.miss_rate.max().unwrap_or(0.0);
        let tail = outcome
            .miss_rate
            .iter()
            .filter(|(t, _)| t.as_secs_f64() > 200.0)
            .map(|(_, v)| v)
            .fold(0.0f64, f64::max);
        println!("peak miss rate: {peak:.3}   tail miss rate: {tail:.3}\n");
    }
}
