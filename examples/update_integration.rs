//! In-field updates through the Multi-Change Controller (Sec. II).
//!
//! Parses component contracts from the contracting language, integrates a
//! base system, then proposes a series of updates — a good one, and one
//! violating each viewpoint. Accepted configurations are applied to the
//! execution domain (the microkernel RTE) atomically; the bad ones never
//! reach it.
//!
//! Run with: `cargo run --example update_integration`

use saav::mcc::contract::parse_contracts;
use saav::mcc::integration::{Mcc, UpdateRequest};
use saav::mcc::model::PlatformModel;
use saav::rte::component::{ComponentSpec, VmId};
use saav::rte::rte::{Configuration, Rte};
use saav::rte::sched::{Priority, TaskSpec};
use saav::sim::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut mcc = Mcc::new(PlatformModel::reference());
    let mut rte = Rte::new(1, 8_192);

    // Base system through the model domain …
    let base = parse_contracts(
        r#"
component radar_driver {
  asil B
  provides sensor.radar
  task drv { period 10ms wcet 1ms priority 1 }
}
component acc_controller {
  asil B
  requires sensor.radar rate 100
  provides control.acc
  task ctl { period 20ms wcet 4ms priority 3 }
}
"#,
    )?;
    let report = mcc.propose_update(UpdateRequest {
        label: "base system".into(),
        add: base,
        remove: vec![],
    })?;
    println!("{report}");

    // … and into the execution domain once accepted.
    if report.accepted {
        let config = Configuration {
            components: mcc
                .current()
                .components
                .iter()
                .map(|c| {
                    let mut spec =
                        ComponentSpec::new(&c.name, VmId(0)).with_memory_kib(c.memory_kib);
                    for p in &c.provides {
                        spec = spec.provides(p.name.as_str());
                    }
                    for r in &c.requires {
                        spec = spec.requires(r.name.as_str());
                    }
                    spec
                })
                .collect(),
            tasks: mcc
                .current()
                .components
                .iter()
                .flat_map(|c| {
                    c.tasks.iter().map(move |t| {
                        (
                            c.name.clone(),
                            TaskSpec::periodic(
                                format!("{}.{}", c.name, t.name),
                                saav::rte::component::ComponentId(0), // re-bound on apply
                                t.period,
                                t.wcet,
                                Priority(t.priority),
                            ),
                        )
                    })
                })
                .collect(),
            grants: mcc
                .current()
                .components
                .iter()
                .flat_map(|c| {
                    c.requires
                        .iter()
                        .map(move |r| (c.name.clone(), r.name.as_str().into()))
                })
                .collect(),
        };
        rte.apply_configuration(config)?;
        println!(
            "applied to RTE: acc_controller installed = {}\n",
            rte.component_by_name("acc_controller").is_some()
        );
    }

    // A rejected update never reaches the execution domain: this one fits
    // the resources but cannot meet its deadline next to the base system.
    let bad = parse_contracts(
        "component hog {\n task t { period 20ms wcet 8ms deadline 8ms priority 9 }\n}",
    )?;
    let report = mcc.propose_update(UpdateRequest {
        label: "greedy update".into(),
        add: bad,
        remove: vec![],
    })?;
    println!("{report}");
    println!(
        "hog installed in RTE: {}",
        rte.component_by_name("hog").is_some()
    );

    // And one that cannot even be mapped (refinement error, not a verdict).
    let impossible = parse_contracts("component monster {\n memory 99999\n}")?;
    match mcc.propose_update(UpdateRequest {
        label: "monster".into(),
        add: impossible,
        remove: vec![],
    }) {
        Ok(report) => println!("{report}"),
        Err(e) => println!("update `monster` failed refinement: {e}"),
    }

    // The scheduler actually runs the accepted system.
    rte.advance(saav::sim::time::Time::from_millis(100), 1.0);
    let records = rte.take_records();
    println!(
        "\nRTE executed {} jobs over 100 ms; all deadlines met: {}",
        records.len(),
        records.iter().all(|r| r.deadline_met)
    );
    let _ = Duration::from_millis(1); // keep the import exercised
    Ok(())
}
