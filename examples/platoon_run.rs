//! Multi-vehicle co-simulation: a 5-member platoon ejects a liar.
//!
//! Five self-aware vehicles drive in lockstep on a shared road and
//! negotiate their common cruise speed over the V2V channel. Member 2 is
//! compromised and broadcasts a 2 m/s claim to stall the platoon; the
//! trimmed-mean agreement ignores the lie, evidence-based trust collapses
//! within a few rounds, and the ejection escalates through the standard
//! cross-layer containment path — the liar falls back to standalone ACC
//! while the remaining members cruise at the honest robust minimum.
//!
//! Run with: `cargo run --example platoon_run`

use saav::core::runner;
use saav::core::scenario::{ResponseStrategy, ScenarioFamily};

fn main() {
    let scenario = ScenarioFamily::PlatoonLiarLow.build(ResponseStrategy::CrossLayer, 1);
    let spec = scenario.platoon.clone().expect("platoon scenario");
    println!(
        "== co-simulating {} members at {:.0} m gaps, cruise {:.0} m/s ==",
        spec.members, spec.initial_gap_m, spec.cruise_mps
    );
    for lie in &spec.liars {
        println!(
            "member {} is compromised: broadcasts {:.1} m/s instead of its safe speed",
            lie.member, lie.claim_mps
        );
    }

    let out = runner::run(scenario);
    let p = out.platoon.as_ref().expect("platoon outcome");

    println!("\n-- negotiation timeline (first 6 rounds) --");
    for (t, speed) in p.agreed_speed.iter().take(6) {
        println!(
            "  t = {:>4.1} s   agreed speed {speed:.1} m/s",
            t.as_secs_f64()
        );
    }
    println!("\n-- trust-based ejections --");
    for &(member, at) in &p.ejections {
        println!(
            "  t = {:>4.1} s   member {member} ejected",
            at.as_secs_f64()
        );
    }
    println!("\n-- cooperative containment (through the coordinator) --");
    for action in &out.actions {
        println!("  {action}");
    }
    println!("\n-- end state --");
    println!("  agreed speed : {:.1} m/s", p.final_agreed_mps.unwrap());
    println!(
        "  trust        : {}",
        p.final_trust
            .iter()
            .map(|(m, t)| format!("m{m}={t:.2}"))
            .collect::<Vec<_>>()
            .join("  ")
    );
    println!(
        "  collisions   : {} / {} members",
        p.member_collisions(),
        p.members
    );
    println!("  mean distance: {:.0} m", out.distance_m);
    assert!(!out.collision, "the platoon must survive the liar");
}
