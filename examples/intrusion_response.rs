//! The paper's Sec. V security example, strategy by strategy.
//!
//! A compromised rear-brake component is detected at run time; the vehicle
//! can (a) only shut it down at the safety layer, (b) coordinate across
//! layers (shutdown + speed cap + drive-train braking), or (c) perform a
//! minimal-risk stop. The run prints the cross-layer trace and the
//! availability/safety trade the paper describes.
//!
//! Run with: `cargo run --example intrusion_response --release`

use saav::core::{ResponseStrategy, Scenario, SelfAwareVehicle};

fn main() {
    for strategy in [
        ResponseStrategy::SingleLayer,
        ResponseStrategy::CrossLayer,
        ResponseStrategy::ObjectiveStop,
    ] {
        let outcome = SelfAwareVehicle::run(Scenario::intrusion(strategy, 42));
        println!("=== {strategy:?} ===");
        println!(
            "  detected: {}   mitigated: {}",
            outcome
                .first_detection
                .map(|t| format!("{:.2}s", t.as_secs_f64()))
                .unwrap_or_else(|| "-".into()),
            outcome
                .mitigated_at
                .map(|t| format!("{:.2}s", t.as_secs_f64()))
                .unwrap_or_else(|| "-".into()),
        );
        println!(
            "  distance: {:.0} m (availability proxy)",
            outcome.distance_m
        );
        println!(
            "  min TTC : {}",
            if outcome.min_ttc_s.is_finite() {
                format!("{:.1} s", outcome.min_ttc_s)
            } else {
                "never closing".into()
            }
        );
        println!("  mode    : {}", outcome.final_mode);
        println!("  actions : {:?}", outcome.actions);
        println!("  cross-layer trace:");
        for entry in outcome.trace.entries().iter().take(6) {
            println!("    {entry}");
        }
        println!();
    }
    println!("The trade the paper describes: single-layer handling preserves");
    println!("the most mission distance but drives at full speed on half the");
    println!("brakes; the objective layer is maximally safe but abandons the");
    println!("mission; the cross-layer response keeps driving inside the");
    println!("capability envelope the ability graph derives.");
}
