//! City-scale tiered-fidelity co-simulation: 200 vehicles, 2 focal.
//!
//! A 202-slot traffic chain drives for 30 s. Two focal vehicles run the
//! full self-awareness stack (platform, RTE, CAN, monitors, ability
//! graph, coordinator); the other 200 live in the struct-of-arrays
//! surrogate tier and cost a few nanoseconds per tick each. Background
//! vehicles drifting inside a focal vehicle's neighborhood are promoted
//! to full fidelity mid-run and demoted again when the gap reopens. At
//! t = 10 s the scripted intrusion compromises the focal vehicles'
//! rear-brake component — detection and containment run exactly as in
//! the single-vehicle scenarios, undisturbed by the surrounding traffic.
//!
//! Run with: `cargo run --release --example city_scale`

use std::time::Instant;

use saav::core::runner;
use saav::core::scenario::{CitySpec, Scenario, ScenarioEvent};
use saav::sim::time::{Duration, Time};

fn main() {
    let spec = CitySpec::new(200, 2);
    println!(
        "== city chain: {} vehicles ({} surrogate background + {} focal), \
         {:.0} m gaps, cruise {:.0} m/s ==",
        spec.total(),
        spec.background,
        spec.focal,
        spec.initial_gap_m,
        spec.cruise_mps
    );
    for k in 0..spec.focal {
        println!(
            "focal vehicle #{k} holds chain slot {} (promotion radius {:.0} m)",
            spec.focal_slot(k),
            spec.promotion_radius_m
        );
    }

    let scenario = Scenario::builder("city-scale")
        .seed(7)
        .duration(Duration::from_secs(30))
        .at(Time::from_secs(10), ScenarioEvent::CompromiseRearBrake)
        .city(spec)
        .build();

    let start = Instant::now();
    let out = runner::run(scenario);
    let wall = start.elapsed().as_secs_f64();
    let city = out.city.as_ref().expect("city outcome");

    println!("\n-- tier economics --");
    let total_ticks = city.surrogate_vehicle_ticks + city.full_vehicle_ticks;
    println!(
        "  {} ticks in {:.2} s wall ({:.1}M vehicle-ticks/s)",
        city.ticks,
        wall,
        total_ticks as f64 / wall / 1e6
    );
    println!(
        "  surrogate tier: {} vehicle-ticks ({:.1}% of all vehicle-ticks)",
        city.surrogate_vehicle_ticks,
        100.0 * city.surrogate_vehicle_ticks as f64 / total_ticks as f64
    );
    println!(
        "  full tier     : {} vehicle-ticks, peak {} concurrent full stacks",
        city.full_vehicle_ticks, city.max_full_tier
    );
    println!(
        "  {} promotions / {} demotions as neighborhoods shifted",
        city.promotions, city.demotions
    );

    println!("\n-- focal vehicles under intrusion (t = 10 s) --");
    for (k, detected) in city.focal_first_detection.iter().enumerate() {
        match detected {
            Some(at) => println!(
                "  focal #{k}: first detection at t = {:.2} s ({:+.2} s after injection)",
                at.as_secs_f64(),
                at.as_secs_f64() - 10.0
            ),
            None => println!("  focal #{k}: nothing detected"),
        }
    }
    for action in out.actions.iter().take(4) {
        println!("  {action}");
    }

    println!("\n-- end state --");
    println!(
        "  chain min gap  : {:.1} m (collision: {})",
        city.chain_min_gap_m, city.chain_collision
    );
    println!(
        "  focal collisions: {} of {}",
        city.focal_collision_count(),
        city.focal
    );
    println!("  final mode     : {:?}", out.final_mode);
}
