//! Cooperation under distrust: platooning through dense fog, and the
//! weather-aware route choice (Sec. V).
//!
//! A fog-degraded vehicle cannot keep driving alone, but a platoon of
//! better-equipped vehicles agrees on a common speed that respects its
//! limits — even with a compromised member lying in the negotiation. The
//! second half plans the alpine-pass-vs-detour route under a worsening
//! forecast.
//!
//! Run with: `cargo run --example platoon_fog`

use saav::platoon::agreement::Behavior;
use saav::platoon::platoon::Platoon;
use saav::platoon::routing::{alpine_scenario, CostModel, RoadNode};

fn main() {
    // --- platooning -----------------------------------------------------
    println!("== platoon speed negotiation (f = 1 tolerated) ==");
    let mut platoon = Platoon::new(1);
    for (label, speed) in [
        ("alpha (clear)", 24.0),
        ("bravo (clear)", 23.0),
        ("carol (clear)", 22.0),
        ("dave  (clear)", 25.0),
        ("erin  (light fog)", 18.0),
    ] {
        let id = platoon.join(speed, Behavior::Honest);
        println!("  {label:<18} safe speed {speed:>5.1} m/s (member {id:?})");
    }
    // The fog-blind vehicle and an attacker that low-balls to stall everyone.
    let fog_vehicle = platoon.join(12.0, Behavior::Honest);
    println!("  foggy (dense fog)  safe speed  12.0 m/s (member {fog_vehicle:?})");
    let attacker = platoon.join(20.0, Behavior::ConstantLie(2.0));
    println!("  mallory (liar)     reports      2.0 m/s (member {attacker:?})");

    for round in 1..=3 {
        match platoon.negotiate_speed() {
            Ok(n) => {
                println!(
                    "round {round}: agreed speed {:.1} m/s (converged: {}, ejected: {:?})",
                    n.speed_mps, n.agreement.converged, n.ejected
                );
            }
            Err(e) => println!("round {round}: {e}"),
        }
    }
    println!(
        "mallory's trust after negotiation: {:.2}\n",
        platoon.trust(attacker)
    );

    // --- weather-aware routing -------------------------------------------
    println!("== alpine pass vs detour ==");
    let risk = CostModel::RiskAware {
        slowdown: 1.0,
        risk_weight: 1.0,
    };
    println!("forecast p(bad)  naive     risk-aware");
    for p in [0.0, 0.2, 0.4, 0.6, 0.8] {
        let (graph, start, goal) = alpine_scenario(p);
        let naive = graph
            .plan(start, goal, CostModel::Naive)
            .expect("reachable");
        let smart = graph.plan(start, goal, risk).expect("reachable");
        let name = |r: &saav::platoon::routing::Route| {
            if r.nodes.contains(&RoadNode(1)) {
                "pass"
            } else {
                "detour"
            }
        };
        println!(
            "      {p:.1}        {:<8}  {:<10} (risk-aware cost {:.0} min)",
            name(&naive),
            name(&smart),
            smart.cost
        );
    }
}
