//! Learned self-awareness, end to end: train on nominal fleet runs, then
//! monitor a disturbed run online.
//!
//! The hand-written monitors of the paper check explicit contracts (WCET,
//! ranges, rates). This example shows the learned complement: a fleet
//! batch of baseline runs is captured as training traces, a
//! `SelfAwarenessModel` learns the nominal state space and its dynamics,
//! and the model is then mounted beside the contract monitors in a
//! stop-and-go scenario — a condition no contract flags (nothing is
//! broken!) but which the learned monitor correctly reports as outside
//! nominal operation.
//!
//! Run with: `cargo run --example learned_monitor --release`

use saav::core::fleet::FleetRunner;
use saav::core::scenario::{ResponseStrategy, Scenario, ScenarioFamily};
use saav::core::vehicle::SelfAwareVehicle;
use saav::learn::{LearnConfig, SelfAwarenessModel};

fn main() {
    // 1. Nominal data: a fleet batch of baseline runs across derived seeds.
    let fleet = FleetRunner::new(42);
    let jobs: Vec<Scenario> = (0..4)
        .map(|_| ScenarioFamily::Baseline.build(ResponseStrategy::CrossLayer, 0))
        .collect();
    println!("capturing {} nominal baseline runs…", jobs.len());
    let traces = fleet.capture_traces(jobs);

    // 2. Train: quantizers → state vocabulary → transition model, with the
    //    threshold calibrated on the training traces themselves.
    let model = SelfAwarenessModel::train(&traces, LearnConfig::default())
        .expect("nominal traces are valid training data");
    println!(
        "trained: {} signals, {} states, threshold {:.2}",
        model.signals().len(),
        model.vocab().len(),
        model.threshold()
    );

    // 3. Score online: the stop-and-go scenario is mechanically healthy —
    //    no contract is violated — but it is not nominal highway driving.
    let scenario = ScenarioFamily::StopAndGo.build(ResponseStrategy::CrossLayer, 7);
    let out = SelfAwareVehicle::run_with_model(scenario, &model);
    println!("\nstop-and-go run with the learned monitor mounted:");
    println!(
        "  contract monitors detected: {}",
        out.first_detection
            .map(|t| format!("{:.1} s", t.as_secs_f64()))
            .unwrap_or_else(|| "nothing".into())
    );
    println!(
        "  learned monitor detected:   {}",
        out.first_model_deviation
            .map(|t| format!("{:.1} s", t.as_secs_f64()))
            .unwrap_or_else(|| "nothing".into())
    );
    println!(
        "  peak abnormality score:     {:.2} (threshold {:.2})",
        out.model_score.max().unwrap_or(0.0),
        model.threshold()
    );

    // 4. And on a baseline run the learned monitor stays silent — its
    //    threshold was calibrated to make nominal operation score below it.
    let quiet = SelfAwareVehicle::run_with_model(Scenario::baseline(43), &model);
    println!(
        "\nbaseline run: learned monitor fired: {}",
        quiet.first_model_deviation.is_some()
    );
}
