//! End-to-end determinism pins for the city-scale tiered-fidelity engine.
//!
//! The city engine's contract is that focal outcomes are a pure function
//! of `(scenario, seed)`: bit-identical across repeat runs, across
//! [`FleetRunner`] worker-thread counts, and under surrogate-store
//! capacity changes. The legacy single-vehicle and platoon families are
//! pinned the same way so the new engine's scheduling work cannot
//! silently perturb the E1–E13 reproduction.

use proptest::prelude::*;

use saav::core::fleet::FleetRunner;
use saav::core::runner;
use saav::core::scenario::{CitySpec, ResponseStrategy, Scenario, ScenarioEvent, ScenarioFamily};
use saav::core::telemetry::{Counter, Telemetry};
use saav::sim::time::{Duration, Time};
use saav::vehicle::{IdmParams, SurrogateTraffic};

/// A small city batch spanning the interesting corners: no background,
/// dense background, one to three focal stacks, with a scripted intrusion
/// mid-run.
fn city_jobs() -> Vec<Scenario> {
    [(0usize, 2usize), (5, 1), (20, 2), (60, 3)]
        .iter()
        .map(|&(background, focal)| {
            Scenario::builder(format!("city/{background}b{focal}f"))
                .duration(Duration::from_secs(8))
                .at(Time::from_secs(3), ScenarioEvent::CompromiseRearBrake)
                .city(CitySpec::new(background, focal))
                .build()
        })
        .collect()
}

/// City batches are bit-identical regardless of how many fleet workers
/// execute them: the runner owns seeding per job index, and the engine
/// itself shares no state across jobs.
#[test]
fn city_fleet_is_bit_identical_across_thread_counts() {
    let base = FleetRunner::new(0xC17)
        .with_threads(1)
        .run_scenarios(city_jobs());
    assert!(
        base.records.iter().all(|r| r.summary.city.is_some()),
        "every record must carry a city summary"
    );
    assert!(
        base.records
            .iter()
            .any(|r| r.summary.first_detection.is_some()),
        "the scripted intrusion must be detected by some focal vehicle"
    );
    for threads in [2usize, 4, 8] {
        let other = FleetRunner::new(0xC17)
            .with_threads(threads)
            .run_scenarios(city_jobs());
        assert_eq!(
            base, other,
            "{threads}-thread batch diverged from the single-thread batch"
        );
    }
}

/// The legacy experiment families (the E1–E13 substrate) stay bit-identical
/// across worker counts too — the city engine rides the same dispatcher,
/// so this pins that nothing about the new path leaks into the old ones.
#[test]
fn legacy_families_are_bit_identical_across_thread_counts() {
    let jobs = || -> Vec<Scenario> {
        ScenarioFamily::ALL
            .iter()
            .chain(&ScenarioFamily::PLATOON)
            .map(|&family| {
                let mut s = family.build(ResponseStrategy::CrossLayer, 0);
                s.duration = Duration::from_secs(6);
                s
            })
            .collect()
    };
    let single = FleetRunner::new(0xE1).with_threads(1).run_scenarios(jobs());
    let pooled = FleetRunner::new(0xE1).with_threads(4).run_scenarios(jobs());
    assert_eq!(
        single, pooled,
        "legacy family outcomes depend on the fleet thread count"
    );
}

/// A mounted telemetry sink sees the *same* deterministic run content at
/// every intra-run width: trace events and registry snapshot are
/// bit-identical across thread counts and surrogate chunk sizes, with
/// only the scheduling side channels (steal and barrier counters) masked
/// — those describe how the work was carved up, not what the run did.
#[test]
fn mounted_city_traces_are_invariant_to_intra_run_parallelism() {
    let observe = |threads: usize, chunk: usize| {
        let sink = Telemetry::default();
        let s = Scenario::builder("obs/city-par")
            .seed(0xC17)
            .duration(Duration::from_secs(6))
            .at(Time::from_secs(3), ScenarioEvent::CompromiseRearBrake)
            .city(
                CitySpec::new(20, 2)
                    .with_threads(threads)
                    .with_surrogate_chunk(chunk),
            )
            .build();
        runner::run_observed(s, None, &sink);
        let mut snap = sink.snapshot();
        snap.counters[Counter::ShardSteals as usize] = 0;
        snap.counters[Counter::TickBarriers as usize] = 0;
        (sink.events(), snap)
    };
    let (base_events, base_snap) = observe(1, 1_024);
    assert!(!base_events.is_empty(), "run must record trace events");
    for (threads, chunk) in [(2, 5), (2, 1_024), (3, 16), (4, 1), (4, 7)] {
        let (events, snap) = observe(threads, chunk);
        assert_eq!(
            base_events, events,
            "trace diverged at {threads} threads, chunk {chunk}"
        );
        assert_eq!(
            base_snap, snap,
            "registry diverged at {threads} threads, chunk {chunk}"
        );
    }
}

proptest! {
    /// Running the same city scenario twice gives the same outcome, down
    /// to the last bit of every focal metric — across the whole
    /// (density, focal count, seed) space, not just the curated corners.
    #[test]
    fn city_runs_are_reproducible(
        background in 0usize..16,
        focal in 1usize..3,
        seed in any::<u64>(),
    ) {
        let scenario = |label: &str| {
            Scenario::builder(format!("prop/{label}"))
                .seed(seed)
                .duration(Duration::from_secs(2))
                .city(CitySpec::new(background, focal))
                .build()
        };
        let a = runner::run(scenario("a"));
        let b = runner::run(scenario("b"));
        prop_assert_eq!(a.city.as_ref(), b.city.as_ref());
        prop_assert_eq!(a.summary().city, b.summary().city);
        prop_assert_eq!(a.distance_m.to_bits(), b.distance_m.to_bits());
        prop_assert_eq!(a.first_detection, b.first_detection);
    }

    /// The tentpole contract of the parallel city engine: the outcome is
    /// a pure function of `(scenario, seed)` — any intra-run thread
    /// count, any surrogate chunk size, and repeat runs at the same
    /// width all produce the bit-identical CityOutcome the sequential
    /// engine produces.
    #[test]
    fn city_outcome_is_invariant_to_intra_run_parallelism(
        background in 0usize..24,
        focal in 1usize..4,
        seed in any::<u64>(),
        threads in 2usize..5,
        chunk in 1usize..48,
    ) {
        let scenario = |threads: usize, chunk: usize| {
            Scenario::builder(format!("prop/par-{threads}t{chunk}c"))
                .seed(seed)
                .duration(Duration::from_secs(2))
                .at(Time::from_secs(1), ScenarioEvent::CompromiseRearBrake)
                .city(
                    CitySpec::new(background, focal)
                        .with_threads(threads)
                        .with_surrogate_chunk(chunk),
                )
                .build()
        };
        let base = runner::run(scenario(1, 1_024));
        let par = runner::run(scenario(threads, chunk));
        let repeat = runner::run(scenario(threads, chunk));
        prop_assert_eq!(base.city.as_ref(), par.city.as_ref());
        prop_assert_eq!(base.distance_m.to_bits(), par.distance_m.to_bits());
        prop_assert_eq!(base.min_gap_m.to_bits(), par.min_gap_m.to_bits());
        prop_assert_eq!(base.first_detection, par.first_detection);
        prop_assert_eq!(par.city.as_ref(), repeat.city.as_ref());
        prop_assert_eq!(par.distance_m.to_bits(), repeat.distance_m.to_bits());
    }

    /// The surrogate tier's trajectory is a function of the chain alone:
    /// pre-reserving any capacity (or none) must not change a single bit
    /// of any vehicle's state at any step.
    #[test]
    fn surrogate_trajectory_is_invariant_to_store_capacity(
        n in 1usize..40,
        speed in 0.0f64..30.0,
        gap in 5.0f64..60.0,
        capacity in 0usize..5_000,
        steps in 1usize..150,
    ) {
        let mut lean = SurrogateTraffic::new(IdmParams::default());
        let mut roomy = SurrogateTraffic::with_capacity(IdmParams::default(), capacity);
        for i in 0..n {
            lean.push_vehicle(-(i as f64) * gap, speed);
            roomy.push_vehicle(-(i as f64) * gap, speed);
        }
        let dt = Duration::from_millis(10);
        for step in 0..steps {
            lean.step(dt);
            roomy.step(dt);
            for i in 0..n {
                prop_assert_eq!(
                    lean.position_m(i).to_bits(),
                    roomy.position_m(i).to_bits(),
                    "position diverged at step {} vehicle {}", step, i
                );
                prop_assert_eq!(
                    lean.speed_mps(i).to_bits(),
                    roomy.speed_mps(i).to_bits(),
                    "speed diverged at step {} vehicle {}", step, i
                );
            }
        }
        prop_assert_eq!(lean.min_gap_m().to_bits(), roomy.min_gap_m().to_bits());
        prop_assert_eq!(lean.collision(), roomy.collision());
    }
}
