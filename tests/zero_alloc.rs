//! Allocation pins for the hot tick paths.
//!
//! The whole binary runs under a counting wrapper around the system
//! allocator; each pin warms a simulation up past its start-up
//! allocations (series buffers, scheduler queues, CAN queues), then
//! counts heap allocations across a window of nominal ticks placed
//! between the 1 Hz recording instants and asserts the count is zero.
//! Any future `clone()`, `format!()` or `Vec` growth snuck into a tick
//! path fails these tests rather than silently costing 100 Hz × fleet.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use saav::core::cache::ResultCache;
use saav::core::city::CityRun;
use saav::core::fleet::FleetRunner;
use saav::core::runner::SteppedRun;
use saav::core::scenario::{CitySpec, ResponseStrategy, Scenario, ScenarioFamily};
use saav::core::telemetry::{Stage, Telemetry};
use saav::sim::time::Duration;
use saav::vehicle::{IdmParams, SurrogateTraffic};

/// Forwards to the system allocator, counting allocations (and
/// reallocations) while [`COUNTING`] is set.
struct CountingAllocator;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Serializes the tests in this binary: the counter is process-global, so
/// another test's setup allocating mid-window would register as a false
/// positive. Each test holds the gate for its whole body.
static GATE: Mutex<()> = Mutex::new(());

fn gate() -> std::sync::MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs `f` with allocation counting on and returns how many heap
/// allocations it performed.
fn count_allocs(f: impl FnOnce()) -> u64 {
    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    f();
    COUNTING.store(false, Ordering::SeqCst);
    ALLOCS.load(Ordering::SeqCst)
}

/// The nominal single-vehicle tick path allocates nothing: platform,
/// scheduler, plant, CAN pump, monitor scan, ability propagation — the
/// full per-control-period stack — run allocation-free once warm. With
/// no telemetry sink mounted this also pins the unmounted-telemetry
/// plumbing (the `Option<&mut RunTelemetry>` threading) at zero cost.
/// The window deliberately dodges the whole-second instants, where the
/// 1 Hz series push is *allowed* to grow its buffers.
#[test]
fn nominal_tick_path_is_allocation_free() {
    let _g = gate();
    let mut scenario = ScenarioFamily::Baseline.build(ResponseStrategy::CrossLayer, 42);
    scenario.duration = Duration::from_secs(30);
    let mut sim = SteppedRun::new(&scenario);
    // Warm up through two whole-second instants so every ring buffer,
    // queue and series has reached steady-state capacity.
    while sim.now_millis() < 2_000 {
        sim.tick();
    }
    assert_eq!(sim.now_millis() % 1_000, 0, "warmup must end on a second");
    let allocs = count_allocs(|| {
        for _ in 0..99 {
            sim.tick();
        }
    });
    assert_eq!(
        allocs, 0,
        "nominal tick path allocated {allocs} times in 99 ticks"
    );
    assert_eq!(sim.now_millis(), 2_990);
}

/// A *mounted* telemetry sink stays off the heap too: the trace ring is
/// sized once at `begin_run`, counters and histograms are fixed arrays,
/// and the virtual-time profiler charges constants instead of reading
/// clocks — so the steady-state tick is allocation-free with telemetry
/// on, not just off.
#[test]
fn mounted_telemetry_tick_is_allocation_free() {
    let _g = gate();
    let mut scenario = ScenarioFamily::Baseline.build(ResponseStrategy::CrossLayer, 42);
    scenario.duration = Duration::from_secs(30);
    let sink = Telemetry::default();
    let mut sim = SteppedRun::with_telemetry(&scenario, &sink);
    while sim.now_millis() < 2_000 {
        sim.tick();
    }
    let allocs = count_allocs(|| {
        for _ in 0..99 {
            sim.tick();
        }
    });
    assert_eq!(
        allocs, 0,
        "mounted-telemetry tick path allocated {allocs} times in 99 ticks"
    );
    let _ = sim.finish();
    assert!(
        sink.snapshot().stage_calls_of(Stage::Runner) > 0,
        "profiler saw no runner ticks"
    );
}

/// A fully-warm cache-hit fleet sweep performs zero allocations *per
/// job*: hashing the job identity, the cache lookup and the `Arc` share
/// of the cached summary are all allocation-free, so a warm sweep's
/// total allocation count is a small constant (result vector, stats
/// buffers) that does not grow with the job count. Pinned by exact
/// equality between a 6-job and a 24-job warm sweep on the inline
/// single-thread path, and by a tight bound on the work-stealing path.
#[test]
fn warm_cache_sweep_allocations_are_independent_of_job_count() {
    let _g = gate();
    // Index i in both batch sizes maps to the same scenario, so the
    // 24-job batch's first 6 jobs are identical to the 6-job batch
    // (seeds derive from the index) and one cache serves both.
    let jobs = |n: usize| -> Vec<Scenario> {
        (0..n)
            .map(|i| {
                let family = [
                    ScenarioFamily::Baseline,
                    ScenarioFamily::Intrusion,
                    ScenarioFamily::StopAndGo,
                ][i % 3];
                let mut s = family.build(ResponseStrategy::ALL[i % 3], 0);
                s.duration = Duration::from_secs(4);
                s
            })
            .collect()
    };
    let cache = ResultCache::in_memory();
    let inline = FleetRunner::new(11)
        .with_threads(1)
        .with_cache(cache.clone());
    // Cold passes populate every slot of both batch sizes.
    let _ = inline.run_scenarios(jobs(6));
    let _ = inline.run_scenarios(jobs(24));
    assert_eq!(cache.stats().misses, 24, "6-job batch is a prefix of 24");

    // Jobs are built outside the counting window; the sweep itself runs
    // inside it. Keep the outcome alive past the window so its drop (not
    // counted anyway) cannot confuse the comparison.
    let (small, large) = (jobs(6), jobs(24));
    // Preallocated so `keep.push` itself never allocates mid-window.
    let mut keep = Vec::with_capacity(4);
    let allocs_6 = count_allocs(|| keep.push(inline.run_scenarios(small)));
    let (small2, large2) = (jobs(6), jobs(24));
    let allocs_24 = count_allocs(|| keep.push(inline.run_scenarios(large)));
    assert_eq!(
        allocs_6, allocs_24,
        "inline warm sweep allocations grew with job count: \
         {allocs_6} at 6 jobs vs {allocs_24} at 24 jobs"
    );
    assert!(
        allocs_24 <= 16,
        "inline warm sweep performed {allocs_24} allocations — \
         the per-sweep constant overhead grew"
    );

    // The work-stealing multi-thread path: per-job steal/lookup is
    // allocation-free too, so the count is bounded by the per-sweep and
    // per-worker constants — never by the job count.
    let stealing = FleetRunner::new(11)
        .with_threads(3)
        .with_cache(cache.clone());
    let allocs_6_mt = count_allocs(|| keep.push(stealing.run_scenarios(small2)));
    let allocs_24_mt = count_allocs(|| keep.push(stealing.run_scenarios(large2)));
    assert!(
        allocs_24_mt <= allocs_6_mt + 8,
        "work-steal warm sweep allocations grew with job count: \
         {allocs_6_mt} at 6 jobs vs {allocs_24_mt} at 24 jobs"
    );
    assert_eq!(cache.stats().misses, 24, "warm sweeps must never miss");
    drop(keep);
}

/// A city scenario with the given intra-run width: 40 background + 2
/// focal vehicles, long enough that the steady-state window sits well
/// past the promotion churn of the first seconds.
fn city_scenario(threads: usize, chunk: usize) -> Scenario {
    Scenario::builder("alloc/city")
        .seed(3)
        .duration(Duration::from_secs(30))
        .city(
            CitySpec::new(40, 2)
                .with_threads(threads)
                .with_surrogate_chunk(chunk),
        )
        .build()
}

/// The single-thread city engine — the acceptance criterion's pure
/// inline loop — allocates nothing in steady state, unmounted or with a
/// telemetry sink mounted. The window dodges the whole-second instants,
/// where promotion/demotion and the 1 Hz series pushes are *allowed* to
/// allocate.
#[test]
fn city_tick_path_is_allocation_free_single_thread() {
    let _g = gate();
    let scenario = city_scenario(1, 1_024);
    let mut sim = CityRun::new(&scenario);
    while sim.now_millis() < 2_000 {
        sim.tick();
    }
    assert_eq!(sim.now_millis() % 1_000, 0, "warmup must end on a second");
    let allocs = count_allocs(|| {
        for _ in 0..99 {
            sim.tick();
        }
    });
    assert_eq!(
        allocs, 0,
        "single-thread city tick allocated {allocs} times in 99 ticks"
    );

    let sink = Telemetry::default();
    let mut sim = CityRun::with_telemetry(&scenario, &sink);
    while sim.now_millis() < 2_000 {
        sim.tick();
    }
    let allocs = count_allocs(|| {
        for _ in 0..99 {
            sim.tick();
        }
    });
    assert_eq!(
        allocs, 0,
        "mounted single-thread city tick allocated {allocs} times in 99 ticks"
    );
    let _ = sim.finish();
    assert!(
        sink.snapshot().stage_calls_of(Stage::Surrogate) > 0,
        "profiler saw no surrogate stages"
    );
}

/// The *parallel* city engine holds the same pin: per-worker state (pool
/// shards, telemetry scratches, chunk fold slots) is sized during warmup
/// and the steady-state tick — chunked surrogate passes, cluster
/// dispatch, scratch absorption — stays off the heap on every thread
/// (the counting allocator is process-global, so worker allocations
/// would be caught here too).
#[test]
fn parallel_city_tick_path_is_allocation_free() {
    let _g = gate();
    // Chunk 16 over 42 lanes gives three chunks, so the chunked passes
    // genuinely engage; 2 focal vehicles give two clusters.
    let scenario = city_scenario(2, 16);
    let sink = Telemetry::default();
    let mut sim = CityRun::with_telemetry(&scenario, &sink);
    while sim.now_millis() < 2_000 {
        sim.tick();
    }
    let allocs = count_allocs(|| {
        for _ in 0..99 {
            sim.tick();
        }
    });
    assert_eq!(
        allocs, 0,
        "parallel city tick allocated {allocs} times in 99 ticks"
    );
    let _ = sim.finish();
}

/// The surrogate-tier batch update is allocation-free from the very
/// first step: the struct-of-arrays lanes are sized at construction and
/// the three passes touch nothing but them.
#[test]
fn surrogate_store_step_is_allocation_free() {
    let _g = gate();
    let mut store = SurrogateTraffic::new(IdmParams::default());
    for i in 0..1_000 {
        store.push_vehicle(-30.0 * i as f64, 22.0);
    }
    let dt = Duration::from_millis(10);
    let allocs = count_allocs(|| {
        for _ in 0..1_000 {
            store.step(dt);
        }
    });
    assert_eq!(
        allocs, 0,
        "surrogate step allocated {allocs} times in 1,000 batch ticks"
    );
    assert!(!store.collision(), "warm chain must stay collision-free");
}
