//! Allocation pins for the hot tick paths.
//!
//! The whole binary runs under a counting wrapper around the system
//! allocator; each pin warms a simulation up past its start-up
//! allocations (series buffers, scheduler queues, CAN queues), then
//! counts heap allocations across a window of nominal ticks placed
//! between the 1 Hz recording instants and asserts the count is zero.
//! Any future `clone()`, `format!()` or `Vec` growth snuck into a tick
//! path fails these tests rather than silently costing 100 Hz × fleet.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use saav::core::runner::SteppedRun;
use saav::core::scenario::{ResponseStrategy, ScenarioFamily};
use saav::sim::time::Duration;
use saav::vehicle::{IdmParams, SurrogateTraffic};

/// Forwards to the system allocator, counting allocations (and
/// reallocations) while [`COUNTING`] is set.
struct CountingAllocator;

static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Serializes the tests in this binary: the counter is process-global, so
/// another test's setup allocating mid-window would register as a false
/// positive. Each test holds the gate for its whole body.
static GATE: Mutex<()> = Mutex::new(());

fn gate() -> std::sync::MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs `f` with allocation counting on and returns how many heap
/// allocations it performed.
fn count_allocs(f: impl FnOnce()) -> u64 {
    ALLOCS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    f();
    COUNTING.store(false, Ordering::SeqCst);
    ALLOCS.load(Ordering::SeqCst)
}

/// The nominal single-vehicle tick path allocates nothing: platform,
/// scheduler, plant, CAN pump, monitor scan, ability propagation — the
/// full per-control-period stack — run allocation-free once warm. The
/// window deliberately dodges the whole-second instants, where the 1 Hz
/// series push is *allowed* to grow its buffers.
#[test]
fn nominal_tick_path_is_allocation_free() {
    let _g = gate();
    let mut scenario = ScenarioFamily::Baseline.build(ResponseStrategy::CrossLayer, 42);
    scenario.duration = Duration::from_secs(30);
    let mut sim = SteppedRun::new(&scenario);
    // Warm up through two whole-second instants so every ring buffer,
    // queue and series has reached steady-state capacity.
    while sim.now_millis() < 2_000 {
        sim.tick();
    }
    assert_eq!(sim.now_millis() % 1_000, 0, "warmup must end on a second");
    let allocs = count_allocs(|| {
        for _ in 0..99 {
            sim.tick();
        }
    });
    assert_eq!(
        allocs, 0,
        "nominal tick path allocated {allocs} times in 99 ticks"
    );
    assert_eq!(sim.now_millis(), 2_990);
}

/// The surrogate-tier batch update is allocation-free from the very
/// first step: the struct-of-arrays lanes are sized at construction and
/// the three passes touch nothing but them.
#[test]
fn surrogate_store_step_is_allocation_free() {
    let _g = gate();
    let mut store = SurrogateTraffic::new(IdmParams::default());
    for i in 0..1_000 {
        store.push_vehicle(-30.0 * i as f64, 22.0);
    }
    let dt = Duration::from_millis(10);
    let allocs = count_allocs(|| {
        for _ in 0..1_000 {
            store.step(dt);
        }
    });
    assert_eq!(
        allocs, 0,
        "surrogate step allocated {allocs} times in 1,000 batch ticks"
    );
    assert!(!store.collision(), "warm chain must stay collision-free");
}
