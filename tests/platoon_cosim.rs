//! End-to-end invariants of the multi-vehicle co-simulation: lockstep
//! physics on the shared road, V2V-coupled negotiation, trust-based
//! ejection through the standard escalation path, and determinism.

use saav::can::v2v::LinkFault;
use saav::core::fleet::FleetRunner;
use saav::core::scenario::{PlatoonSpec, ResponseStrategy, Scenario, ScenarioFamily};
use saav::core::{runner, SelfAwareVehicle};
use saav::sim::time::Duration;

fn liar_low(seed: u64) -> Scenario {
    ScenarioFamily::PlatoonLiarLow.build(ResponseStrategy::CrossLayer, seed)
}

#[test]
fn no_platoon_family_ever_collides() {
    for family in ScenarioFamily::PLATOON {
        for strategy in ResponseStrategy::ALL {
            let out = SelfAwareVehicle::run(family.build(strategy, 42));
            let p = out.platoon.as_ref().expect("platoon outcome");
            assert!(!out.collision, "{family}/{strategy:?}");
            assert_eq!(
                p.member_collisions(),
                0,
                "{family}/{strategy:?}: member collisions"
            );
        }
    }
}

#[test]
fn liar_ejection_flows_through_the_escalation_path() {
    let out = runner::run(liar_low(9));
    let p = out.platoon.as_ref().unwrap();
    // The liar is ejected and the cooperative containment is on record for
    // both sides: honest members eject, the liar leaves the platoon.
    assert_eq!(p.ejected_members(), vec![2]);
    assert!(out
        .actions
        .iter()
        .any(|a| a == "eject member2 from platoon"));
    assert!(out
        .actions
        .iter()
        .any(|a| a == "leave platoon, standalone ACC"));
    // Peer misbehavior was detected (it feeds `first_detection` like any
    // other anomaly) and resolved.
    assert!(out.first_detection.is_some());
    assert_eq!(out.resolution_rate, Some(1.0));
    // Trust: only the liar collapsed.
    for &(m, trust) in &p.final_trust {
        if m == 2 {
            assert_eq!(trust, 0.0);
        } else {
            assert!(trust > 0.9, "member {m} trust {trust}");
        }
    }
}

#[test]
fn ejection_restores_the_honest_agreement() {
    let out = runner::run(liar_low(4));
    let p = out.platoon.as_ref().unwrap();
    // While the liar is trusted, the robust minimum rejects its 2 m/s
    // low-ball (validity bound): the pre-ejection agreed speed is never
    // dragged below the slowest honest claim minus the protocol slack.
    let first_agreed = p.agreed_speed.iter().next().unwrap().1;
    assert!(first_agreed >= 20.0, "stalled at {first_agreed}");
    // Afterwards the agreement settles above it, at the honest robust min.
    assert_eq!(p.final_agreed_mps, Some(20.5));
}

#[test]
fn followers_hold_formation_behind_the_leader() {
    let out = runner::run(
        Scenario::builder("formation")
            .seed(11)
            .duration(Duration::from_secs(30))
            .platoon(PlatoonSpec::new(6))
            .build(),
    );
    let p = out.platoon.as_ref().unwrap();
    assert_eq!(p.members, 6);
    // Six vehicles at matched speeds never get near each other: the worst
    // gap across every member's world stays positive and sane.
    assert!(out.min_gap_m > 10.0, "min gap {}", out.min_gap_m);
    assert!(!out.collision);
    // Every member covered roughly the same ground (mean distance close to
    // the leader's own series).
    let leader_distance = out.speed.mean().unwrap() * 30.0;
    assert!(
        (out.distance_m - leader_distance).abs() / leader_distance < 0.2,
        "mean {} vs leader {leader_distance}",
        out.distance_m
    );
}

#[test]
fn lossy_links_delay_but_do_not_break_agreement() {
    let mut spec = PlatoonSpec::new(5);
    for m in 0..5 {
        spec = spec.with_link(
            m,
            LinkFault::lossy(0.5).with_delay(Duration::from_millis(200)),
        );
    }
    let out = runner::run(
        Scenario::builder("very-lossy")
            .seed(13)
            .duration(Duration::from_secs(20))
            .platoon(spec)
            .build(),
    );
    let p = out.platoon.as_ref().unwrap();
    assert!(p.converged_at.is_some(), "agreement despite 50% loss");
    assert!(p.ejections.is_empty(), "stale claims must not eject anyone");
    assert_eq!(p.final_agreed_mps, Some(22.0));
}

#[test]
fn spoofed_link_gets_the_victim_ejected() {
    // The member itself is honest — a man-in-the-middle rewrites its
    // broadcasts. The platoon cannot tell the difference and protects
    // itself the same way: trust collapse and ejection.
    let out = runner::run(
        Scenario::builder("spoofed")
            .seed(17)
            .duration(Duration::from_secs(20))
            .platoon(PlatoonSpec::new(5).with_link(1, LinkFault::spoofed(90.0)))
            .build(),
    );
    let p = out.platoon.as_ref().unwrap();
    assert_eq!(p.ejected_members(), vec![1]);
    assert_eq!(p.final_agreed_mps, Some(22.0), "agreement survives");
}

#[test]
fn cosim_outcomes_are_bit_identical_per_seed() {
    let a = runner::run(liar_low(21));
    let b = runner::run(liar_low(21));
    assert_eq!(a.distance_m, b.distance_m);
    assert_eq!(a.min_gap_m, b.min_gap_m);
    assert_eq!(a.min_ttc_s, b.min_ttc_s);
    assert_eq!(a.platoon, b.platoon);
    assert_eq!(a.actions, b.actions);
    // Different seeds move the (noisy) physics.
    let c = runner::run(liar_low(22));
    assert_ne!(a.distance_m, c.distance_m);
}

#[test]
fn platoon_fleet_records_thread_cooperative_summaries() {
    let jobs: Vec<Scenario> = (0..3)
        .map(|_| {
            let mut s = liar_low(0);
            s.duration = Duration::from_secs(8);
            s
        })
        .collect();
    let out = FleetRunner::new(77).with_threads(2).run_scenarios(jobs);
    assert_eq!(out.stats.runs, 3);
    assert_eq!(out.stats.ejections, 3, "one ejection per run");
    assert_eq!(out.stats.peer_collisions, 0);
    for rec in &out.records {
        let p = rec.summary.platoon.as_ref().expect("platoon summary");
        assert_eq!(p.members, 5);
        assert_eq!(p.ejected, vec![2]);
        assert!(rec.ejection_latency_s().is_some());
    }
}
