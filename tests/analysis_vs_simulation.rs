//! Cross-crate soundness check: the timing analysis (`saav-timing`) must
//! upper-bound what the executable scheduler (`saav-rte`) and the CAN bus
//! simulation (`saav-can`) actually produce.
//!
//! This is the load-bearing property behind the MCC's acceptance tests: an
//! update admitted because "analysis says schedulable" must in fact meet
//! its deadlines in the execution domain.

use saav::can::bus::CanBus;
use saav::can::controller::ControllerConfig;
use saav::can::frame::{CanFrame, FrameId};
use saav::rte::component::ComponentId;
use saav::rte::sched::{Priority as RtePriority, Scheduler, TaskSpec};
use saav::sim::time::{Duration, Time};
use saav::timing::event_model::EventModel;
use saav::timing::task::{Priority, Task};
use saav::timing::{CanAnalysis, CpuAnalysis};

fn ms(v: u64) -> Duration {
    Duration::from_millis(v)
}

/// Task sets at various utilizations: analysis bound >= simulated max
/// response, job for job.
#[test]
fn cpu_analysis_bounds_simulated_responses() {
    let sets: Vec<Vec<(&str, u64, u64, u32)>> = vec![
        vec![("a", 1, 4, 0), ("b", 2, 6, 1), ("c", 3, 12, 2)],
        vec![("x", 2, 10, 0), ("y", 5, 25, 1), ("z", 9, 50, 2)],
        vec![
            ("p", 1, 5, 0),
            ("q", 1, 7, 1),
            ("r", 2, 11, 2),
            ("s", 3, 23, 3),
        ],
    ];
    for set in sets {
        let mut analysis = CpuAnalysis::new();
        let mut sched = Scheduler::new(99);
        let mut refs = Vec::new();
        for &(name, c, p, prio) in &set {
            analysis.add_task(Task::new(
                name,
                ms(c),
                Priority(prio),
                EventModel::periodic(ms(p)),
                ms(p),
            ));
            refs.push((
                name,
                sched.add_task(
                    TaskSpec::periodic(name, ComponentId(0), ms(p), ms(c), RtePriority(prio))
                        // Execute at full WCET: the worst case the analysis bounds.
                        .with_exec_fraction(1.0, 1.0),
                ),
            ));
        }
        let result = analysis.analyze().expect("schedulable set");
        sched.advance(Time::from_secs(10), 1.0);
        let mut max_response: std::collections::HashMap<saav_sim::name::Name, Duration> =
            std::collections::HashMap::new();
        for rec in sched.take_records() {
            let e = max_response
                .entry(rec.name.clone())
                .or_insert(Duration::ZERO);
            *e = (*e).max(rec.response);
        }
        for &(name, ..) in &set {
            let bound = result.response(name).expect("analysed").wcrt;
            let observed = max_response[name];
            assert!(
                observed <= bound,
                "{name}: observed {observed} exceeds analytic bound {bound}"
            );
        }
    }
}

/// The analysis bound is tight at the critical instant (synchronous
/// release at t=0 with full WCET): the first job attains it exactly.
#[test]
fn cpu_analysis_is_tight_at_critical_instant() {
    let mut analysis = CpuAnalysis::new();
    let mut sched = Scheduler::new(1);
    for &(name, c, p, prio) in &[("a", 1u64, 4u64, 0u32), ("b", 2, 6, 1), ("c", 3, 12, 2)] {
        analysis.add_task(Task::new(
            name,
            ms(c),
            Priority(prio),
            EventModel::periodic(ms(p)),
            ms(p),
        ));
        sched.add_task(
            TaskSpec::periodic(name, ComponentId(0), ms(p), ms(c), RtePriority(prio))
                .with_exec_fraction(1.0, 1.0),
        );
    }
    let result = analysis.analyze().unwrap();
    sched.advance(Time::from_millis(12), 1.0);
    for rec in sched.take_records() {
        if rec.release == Time::ZERO {
            let bound = result.response(&rec.name).unwrap().wcrt;
            assert_eq!(rec.response, bound, "{}", rec.name);
        }
    }
}

/// CAN: the non-preemptive analysis bounds simulated frame latencies under
/// synchronous worst-case release.
#[test]
fn can_analysis_bounds_simulated_latency() {
    // Frame streams: id (priority), period ms, payload 8 bytes.
    let streams: Vec<(u16, u64)> = vec![(0x100, 10), (0x200, 20), (0x300, 40)];
    // Worst-case transmission time of one 8-byte standard frame at 500 kb/s:
    // 135 bits (with stuffing and IFS) × 2 µs = 270 µs.
    let c_frame = Duration::from_micros(270);

    let mut analysis = CanAnalysis::with_bitrate(500_000);
    for &(id, period) in &streams {
        analysis.add_frame(Task::new(
            format!("f{id:x}"),
            c_frame,
            Priority(id as u32),
            EventModel::periodic(ms(period)),
            ms(period),
        ));
    }
    let bounds = analysis.analyze().expect("schedulable");

    let mut bus = CanBus::automotive_500k(5);
    let tx = bus.attach_standard(ControllerConfig {
        tx_capacity: 256,
        tx_latency: Duration::ZERO,
        ..ControllerConfig::default()
    });
    let rx = bus.attach_standard(ControllerConfig {
        rx_capacity: 4_096,
        rx_latency: Duration::ZERO,
        ..ControllerConfig::default()
    });
    // Synchronous release of all streams over one hyperperiod (40 ms).
    let mut sent: Vec<(Time, CanFrame)> = Vec::new();
    for &(id, period) in &streams {
        let mut t = Time::ZERO;
        while t < Time::from_millis(40) {
            let frame = CanFrame::data(FrameId::standard(id).unwrap(), &[0xFF; 8]).unwrap();
            sent.push((t, frame));
            t += ms(period);
        }
    }
    sent.sort_by_key(|&(t, _)| t);
    for &(t, frame) in &sent {
        bus.advance(t);
        assert!(bus.standard_mut(tx).send(frame, t));
    }
    bus.advance(Time::from_millis(100));
    // Drain in delivery order; measure per-stream worst latency by walking
    // visible times forward.
    let mut deliveries: Vec<(u32, Time)> = Vec::new();
    let mut now = Time::ZERO;
    while now <= Time::from_millis(100) {
        now += Duration::from_micros(10);
        while let Some(f) = bus.standard_mut(rx).receive(now) {
            deliveries.push((f.id().raw(), now));
        }
    }
    // Match deliveries to sends FIFO per stream.
    for &(id, _) in &streams {
        let sends: Vec<Time> = sent
            .iter()
            .filter(|(_, f)| f.id().raw() == id as u32)
            .map(|&(t, _)| t)
            .collect();
        let recvs: Vec<Time> = deliveries
            .iter()
            .filter(|&&(i, _)| i == id as u32)
            .map(|&(_, t)| t)
            .collect();
        assert_eq!(sends.len(), recvs.len(), "stream {id:x} lost frames");
        let bound = bounds.response(&format!("f{id:x}")).unwrap().wcrt + Duration::from_micros(10); // receive-poll quantization
        for (s, r) in sends.iter().zip(&recvs) {
            let latency = r.saturating_since(*s);
            assert!(
                latency <= bound,
                "stream {id:x}: latency {latency} exceeds bound {bound}"
            );
        }
    }
}
