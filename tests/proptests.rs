//! Property-based tests on the core data structures and invariants,
//! spanning the workspace. Each property encodes something the design
//! documents promise unconditionally.

use proptest::prelude::*;

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use saav::can::bitstream::{
    frame_bits_exact, frame_bits_with_ifs, frame_bits_worst_case, stuff, stuffable_bits,
};
use saav::can::controller::TxQueue;
use saav::can::frame::{CanFrame, FrameId};
use saav::core::cache::ResultCache;
use saav::core::coordinator::{Coordinator, EscalationPolicy};
use saav::core::executor::Scheduler;
use saav::core::fleet::{FleetOutcome, FleetRunner, FleetStats};
use saav::core::layer::{Containment, Layer, ProblemKind};
use saav::core::scenario::{ResponseStrategy, Scenario, ScenarioEvent};
use saav::core::telemetry::{Counter, Telemetry, TelemetryEvent, TelemetrySnapshot, TraceRing};
use saav::learn::{Binning, LearnConfig, Quantizer, SelfAwarenessModel, SignalTrace};
use saav::platoon::agreement::{robust_min, trimmed_mean_agreement, Behavior};
use saav::sim::series::Series;
use saav::sim::time::{Duration, Time};
use saav::skills::ability::{AbilityGraph, AggregateOp, Thresholds};
use saav::skills::acc::build_acc_graph;
use saav::timing::event_model::EventModel;
use saav::timing::task::{Priority, Task};
use saav::timing::CpuAnalysis;

/// A small, fast fleet batch: three short scenarios with a scripted
/// disturbance each, across the three strategies.
fn mini_fleet_jobs() -> Vec<Scenario> {
    ResponseStrategy::ALL
        .iter()
        .map(|&strategy| {
            Scenario::builder(format!("mini/{strategy:?}"))
                .strategy(strategy)
                .duration(Duration::from_secs(6))
                .at(Time::from_secs(2), ScenarioEvent::CompromiseRearBrake)
                .build()
        })
        .collect()
}

/// A small, fast multi-vehicle batch: two short platoon scenarios (one
/// with a Byzantine member) across two strategies.
fn mini_platoon_jobs() -> Vec<Scenario> {
    use saav::core::scenario::PlatoonSpec;
    [ResponseStrategy::CrossLayer, ResponseStrategy::SingleLayer]
        .iter()
        .flat_map(|&strategy| {
            [PlatoonSpec::new(4), PlatoonSpec::new(5).with_liar(2, 2.0)]
                .into_iter()
                .map(move |spec| {
                    Scenario::builder(format!("mini-platoon/{strategy:?}/{}", spec.members))
                        .strategy(strategy)
                        .duration(Duration::from_secs(5))
                        .platoon(spec)
                        .build()
                })
        })
        .collect()
}

/// Memoized fleet statistics per `(master_seed, threads, platoon?)`: the
/// runs are deterministic, so each distinct input is computed once across
/// all proptest cases.
fn mini_fleet_stats(master_seed: u64, threads: usize, platoon: bool) -> FleetStats {
    type Key = (u64, usize, bool);
    static CACHE: OnceLock<Mutex<HashMap<Key, FleetStats>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut cache = cache.lock().expect("cache lock");
    cache
        .entry((master_seed, threads, platoon))
        .or_insert_with(|| {
            let jobs = if platoon {
                mini_platoon_jobs()
            } else {
                mini_fleet_jobs()
            };
            FleetRunner::new(master_seed)
                .with_threads(threads)
                .run_scenarios(jobs)
                .stats
        })
        .clone()
}

/// The mini fleet jobs rotated by `rot` — a cheap stand-in for shuffled
/// job order. Seeds derive from the job *index*, so a rotation is a
/// genuinely different batch; cold and warm runs of the same rotation
/// must still agree bit for bit.
fn rotated_mini_jobs(rot: usize) -> Vec<Scenario> {
    let mut jobs = mini_fleet_jobs();
    let rot = rot % jobs.len().max(1);
    jobs.rotate_left(rot);
    jobs
}

/// Memoized cold cache-mounted run per `(master_seed, rot)`: the cold
/// sweep executes once; every proptest case then replays warm sweeps
/// against the shared [`ResultCache`].
fn cold_mini_fleet(master_seed: u64, rot: usize) -> (FleetOutcome, ResultCache) {
    type Key = (u64, usize);
    static CACHE: OnceLock<Mutex<HashMap<Key, (FleetOutcome, ResultCache)>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut cache = cache.lock().expect("cold-fleet lock");
    cache
        .entry((master_seed, rot))
        .or_insert_with(|| {
            let results = ResultCache::in_memory();
            let cold = FleetRunner::new(master_seed)
                .with_threads(2)
                .with_cache(results.clone())
                .run_scenarios(rotated_mini_jobs(rot));
            (cold, results)
        })
        .clone()
}

/// Memoized mini-fleet run per `(master_seed, threads, mounted?)`: the
/// outcome plus — when a telemetry sink was mounted — its snapshot with
/// the schedule-dependent steal counter zeroed.
fn observed_mini_fleet(
    master_seed: u64,
    threads: usize,
    mounted: bool,
) -> (FleetOutcome, Option<TelemetrySnapshot>) {
    type Key = (u64, usize, bool);
    type Val = (FleetOutcome, Option<TelemetrySnapshot>);
    static CACHE: OnceLock<Mutex<HashMap<Key, Val>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut cache = cache.lock().expect("observed-fleet lock");
    cache
        .entry((master_seed, threads, mounted))
        .or_insert_with(|| {
            let mut runner = FleetRunner::new(master_seed).with_threads(threads);
            let sink = mounted.then(Telemetry::default);
            if let Some(sink) = &sink {
                runner = runner.with_telemetry(sink.clone());
            }
            let out = runner.run_scenarios(mini_fleet_jobs());
            let snap = sink.map(|s| {
                let mut snap = s.snapshot();
                snap.counters[Counter::ShardSteals as usize] = 0;
                snap
            });
            (out, snap)
        })
        .clone()
}

proptest! {
    /// CAN bit stuffing never leaves six equal consecutive bits, and the
    /// exact frame length stays within the canonical bounds.
    #[test]
    fn stuffing_invariants(id in 0u16..0x800, payload in proptest::collection::vec(any::<u8>(), 0..=8)) {
        let frame = CanFrame::data(FrameId::standard(id).unwrap(), &payload).unwrap();
        let stuffed = stuff(&stuffable_bits(&frame));
        let mut run = 1;
        for w in stuffed.windows(2) {
            if w[0] == w[1] { run += 1; } else { run = 1; }
            prop_assert!(run <= 5, "six equal bits after stuffing");
        }
        let exact = frame_bits_with_ifs(&frame);
        let min = 34 + 8 * payload.len() as u32 + 13;
        let max = frame_bits_worst_case(payload.len() as u8, false);
        prop_assert!(exact >= min && exact <= max);
        prop_assert_eq!(frame_bits_exact(&frame) + 3, exact);
    }

    /// Arbitration keys order frames exactly like CAN priority rules:
    /// lower numeric standard id wins; any standard frame beats any
    /// extended frame sharing its 11-bit base.
    #[test]
    fn arbitration_key_orders_ids(a in 0u16..0x800, b in 0u16..0x800, ext in 0u32..0x2000_0000) {
        let fa = CanFrame::data(FrameId::standard(a).unwrap(), &[]).unwrap();
        let fb = CanFrame::data(FrameId::standard(b).unwrap(), &[]).unwrap();
        prop_assert_eq!(a.cmp(&b), fa.arbitration_key().cmp(&fb.arbitration_key()));
        let fx = CanFrame::data(FrameId::extended(ext).unwrap(), &[]).unwrap();
        if a as u32 == (ext >> 18) {
            prop_assert!(fa.arbitration_key() < fx.arbitration_key());
        }
    }

    /// TxQueue pops ready frames in strict arbitration order.
    #[test]
    fn tx_queue_pop_order(ids in proptest::collection::vec(0u16..0x800, 1..20)) {
        let mut q = TxQueue::new();
        for &id in &ids {
            let f = CanFrame::data(FrameId::standard(id).unwrap(), &[]).unwrap();
            q.push(f, Time::ZERO);
        }
        let mut popped = Vec::new();
        while let Some(qf) = q.pop_best_ready(Time::ZERO) {
            popped.push(qf.frame.id().raw());
        }
        let mut sorted = ids.iter().map(|&i| i as u32).collect::<Vec<_>>();
        sorted.sort_unstable();
        prop_assert_eq!(popped, sorted);
    }

    /// η⁺ and δ⁻ are pseudo-inverse: n events always fit in any window just
    /// larger than δ⁻(n), and η⁺ is monotone in the window length.
    #[test]
    fn event_model_pseudo_inverse(
        period_ms in 1u64..100,
        jitter_ms in 0u64..200,
        n in 2u64..20,
        w1 in 1u64..500,
        w2 in 1u64..500,
    ) {
        let m = EventModel::with_jitter(
            Duration::from_millis(period_ms),
            Duration::from_millis(jitter_ms),
        );
        let d = m.delta_min(n);
        prop_assert!(m.eta_plus(d + Duration::from_nanos(1)) >= n);
        let (lo, hi) = if w1 <= w2 { (w1, w2) } else { (w2, w1) };
        prop_assert!(
            m.eta_plus(Duration::from_millis(lo)) <= m.eta_plus(Duration::from_millis(hi))
        );
    }

    /// WCRT is monotone in WCET: inflating any task's WCET never shrinks
    /// the victim's bound (when both remain schedulable).
    #[test]
    fn wcrt_monotone_in_wcet(extra_ms in 0u64..3) {
        let build = |hp_wcet: u64| {
            let mut cpu = CpuAnalysis::new();
            cpu.add_task(Task::new(
                "hp",
                Duration::from_millis(hp_wcet),
                Priority(0),
                EventModel::periodic(Duration::from_millis(10)),
                Duration::from_millis(10),
            ));
            cpu.add_task(Task::new(
                "victim",
                Duration::from_millis(4),
                Priority(1),
                EventModel::periodic(Duration::from_millis(40)),
                Duration::from_millis(40),
            ));
            cpu.analyze()
        };
        let base = build(2).unwrap().response("victim").unwrap().wcrt;
        let inflated = build(2 + extra_ms).unwrap().response("victim").unwrap().wcrt;
        prop_assert!(inflated >= base);
    }

    /// Ability propagation is monotone: raising any measured input never
    /// lowers the root level (Min operator).
    #[test]
    fn ability_monotone(
        sensors in 0.0f64..=1.0,
        hmi in 0.0f64..=1.0,
        brakes in 0.0f64..=1.0,
        bump in 0.0f64..=0.5,
    ) {
        let build = |s: f64, h: f64, b: f64| {
            let (graph, nodes) = build_acc_graph().unwrap();
            let mut a = AbilityGraph::instantiate(graph, AggregateOp::Min, Thresholds::default()).unwrap();
            a.set_measured(nodes.env_sensors, s);
            a.set_measured(nodes.hmi, h);
            a.set_measured(nodes.brakes, b);
            a.propagate();
            a.root_level()
        };
        let base = build(sensors, hmi, brakes);
        prop_assert!(build((sensors + bump).min(1.0), hmi, brakes) >= base - 1e-12);
        prop_assert!(build(sensors, (hmi + bump).min(1.0), brakes) >= base - 1e-12);
        prop_assert!(build(sensors, hmi, (brakes + bump).min(1.0)) >= base - 1e-12);
        // Root never exceeds the weakest measured leaf under Min.
        prop_assert!(base <= sensors.min(hmi).min(brakes) + 1e-12);
    }

    /// Trimmed-mean agreement validity: with n > 3f the agreed value stays
    /// inside the honest range no matter what the liars broadcast.
    #[test]
    fn agreement_validity(
        honest in proptest::collection::vec(5.0f64..40.0, 4..10),
        lie_a in -100.0f64..200.0,
        lie_b in -100.0f64..200.0,
    ) {
        let n = honest.len() + 1; // one liar
        prop_assume!(n > 3); // f = 1 tolerated for n >= 4 honest + liar
        let mut initial = honest.clone();
        initial.push(lie_a);
        let mut behaviors = vec![Behavior::Honest; honest.len()];
        behaviors.push(Behavior::Oscillate { low: lie_a.min(lie_b), high: lie_a.max(lie_b) });
        let r = trimmed_mean_agreement(&initial, &behaviors, 1, 0.01, 500);
        prop_assert!(r.converged);
        let lo = honest.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = honest.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(r.agreed_value() >= lo - 0.05 && r.agreed_value() <= hi + 0.05,
                     "agreed {} outside honest [{lo}, {hi}]", r.agreed_value());
    }

    /// The robust minimum never exceeds the largest honest report and never
    /// sinks below the smallest honest report when at most f values are
    /// adversarial.
    #[test]
    fn robust_min_bounds(
        honest in proptest::collection::vec(5.0f64..40.0, 3..8),
        adversarial in -1000.0f64..1000.0,
    ) {
        let mut reports = honest.clone();
        reports.push(adversarial);
        let v = robust_min(&reports, 1);
        let hi = honest.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v <= hi);
        // v is either an honest value or the adversarial one if it lies
        // within the honest range — both acceptable.
        let lo = honest.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert!(v >= lo.min(adversarial.max(lo)) - 1e-12);
    }

    /// The coordinator terminates within |layers| hops for every possible
    /// handler behaviour (modelled as a random resolution layer).
    #[test]
    fn coordinator_always_terminates(
        origin_idx in 0usize..5,
        resolve_at in proptest::option::of(0usize..5),
        policy_broadcast in any::<bool>(),
    ) {
        let policy = if policy_broadcast {
            EscalationPolicy::BroadcastUp
        } else {
            EscalationPolicy::LocalFirst
        };
        let mut c = Coordinator::new(policy);
        let origin = Layer::ALL[origin_idx];
        let p = c.detect(Time::ZERO, origin, "x", ProblemKind::ComponentFailure);
        let trace = c.resolve(p, |layer, _| {
            if Some(layer) == resolve_at.map(|i| Layer::ALL[i]) {
                Containment::Resolved { action: "act".into() }
            } else {
                Containment::CannotHandle
            }
        });
        prop_assert!(trace.hops() <= Layer::ALL.len());
        if let Some(r) = trace.resolved_by {
            if policy == EscalationPolicy::LocalFirst {
                prop_assert!(r >= origin, "resolution below origin layer");
            }
        }
    }

    /// Fleet determinism at scale: with the same master seed, the
    /// aggregate statistics are bit-identical whether the batch runs on
    /// one worker thread or N — job order, per-run seeds and result slots
    /// are fixed before any worker starts.
    #[test]
    fn fleet_stats_identical_across_thread_counts(
        master_seed in 0u64..3,
        threads in 2usize..5,
    ) {
        let single = mini_fleet_stats(master_seed, 1, false);
        let multi = mini_fleet_stats(master_seed, threads, false);
        prop_assert_eq!(single, multi);
    }

    /// Warm (cache-hit) sweeps are bit-identical to their cold sweep for
    /// any worker count, either scheduler and any job-order rotation —
    /// and the warm pass is pure cache traffic: every job hits, nothing
    /// new is simulated or inserted.
    #[test]
    fn warm_fleet_sweep_is_bit_identical_to_cold(
        master_seed in 0u64..2,
        threads in 1usize..5,
        rot in 0usize..3,
        steal in any::<bool>(),
    ) {
        let (cold, results) = cold_mini_fleet(master_seed, rot);
        let before = results.stats();
        let scheduler = if steal { Scheduler::WorkSteal } else { Scheduler::StaticChunk };
        let warm = FleetRunner::new(master_seed)
            .with_threads(threads)
            .with_scheduler(scheduler)
            .with_cache(results.clone())
            .run_scenarios(rotated_mini_jobs(rot));
        prop_assert_eq!(&cold.records, &warm.records);
        prop_assert_eq!(&cold.stats, &warm.stats);
        let after = results.stats();
        prop_assert_eq!(after.hits - before.hits, warm.records.len() as u64);
        prop_assert_eq!(after.misses, before.misses, "warm sweep must not miss");
        prop_assert_eq!(after.insertions, before.insertions);
    }

    /// The same determinism holds for multi-vehicle co-simulation batches:
    /// N lockstep vehicles, V2V faults and trust-based ejections included,
    /// the fleet statistics are bit-identical across worker counts.
    #[test]
    fn platoon_fleet_stats_identical_across_thread_counts(
        master_seed in 0u64..2,
        threads in 2usize..4,
    ) {
        let single = mini_fleet_stats(master_seed, 1, true);
        let multi = mini_fleet_stats(master_seed, threads, true);
        prop_assert_eq!(single, multi);
    }

    /// Series percentiles are order statistics: always inside [min, max]
    /// and monotone in q.
    #[test]
    fn series_percentiles(values in proptest::collection::vec(-1e6f64..1e6, 1..50), q1 in 0.0f64..=1.0, q2 in 0.0f64..=1.0) {
        let s: Series = values
            .iter()
            .enumerate()
            .map(|(i, &v)| (Time::from_millis(i as u64), v))
            .collect();
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let p_lo = s.percentile(lo).unwrap();
        let p_hi = s.percentile(hi).unwrap();
        prop_assert!(p_lo <= p_hi);
        prop_assert!(p_lo >= s.min().unwrap() && p_hi <= s.max().unwrap());
    }

    /// Quantizer round-trip: every bin's representative value quantizes
    /// back into that bin, for both binnings and arbitrary training data.
    #[test]
    fn quantizer_representative_round_trips(
        values in proptest::collection::vec(-1e4f64..1e4, 1..80),
        bins in 1usize..12,
        quantile in any::<bool>(),
    ) {
        let binning = if quantile { Binning::Quantile } else { Binning::Uniform };
        let q = Quantizer::fit(&values, bins, binning);
        prop_assert!(q.bins() >= 1 && q.bins() <= bins);
        for b in 0..q.bins() {
            let rep = q.representative(b);
            prop_assert_eq!(q.bin(rep), b, "binning {:?}", binning);
            // The continuous index agrees with the discrete bin in-range.
            let c = q.continuous_index(rep);
            prop_assert!(c >= b as f64 && c < (b + 1) as f64);
        }
        // Training values always land in a valid bin.
        for &v in &values {
            prop_assert!(q.bin(v) < q.bins());
        }
    }

    /// Train-twice determinism: the same traces (from the same seeds)
    /// produce a bit-identical model — quantizers, vocabulary, transition
    /// matrix and threshold.
    #[test]
    fn training_is_deterministic(
        seed in 0u64..1000,
        traces in 1usize..4,
        len in 8usize..40,
    ) {
        let mk = || -> Vec<SignalTrace> {
            (0..traces).map(|k| {
                let mut rng = saav::sim::rng::SimRng::seed_from(
                    saav::sim::rng::derive_seed(seed, k as u64),
                );
                SignalTrace::new(
                    vec!["a".into(), "b".into()],
                    (0..len).map(|i| vec![
                        (i as f64 * 0.4).sin() + rng.normal(0.0, 0.05),
                        rng.uniform(0.0, 1.0),
                    ]).collect(),
                )
            }).collect()
        };
        let a = SelfAwarenessModel::train(&mk(), LearnConfig::default()).unwrap();
        let b = SelfAwarenessModel::train(&mk(), LearnConfig::default()).unwrap();
        prop_assert_eq!(&a, &b);
        // And the calibrated threshold really covers the training set.
        for t in &mk() {
            prop_assert!(a.score_trace(t) < a.threshold());
        }
    }

    /// Trace-ring wraparound round-trip: for any capacity and push count,
    /// the survivors are exactly the newest `capacity` records in push
    /// order, sequence numbers stay dense and monotone, and the
    /// recorded/evicted totals account for every push.
    #[test]
    fn trace_ring_evicts_oldest_and_keeps_seq_monotone(
        capacity in 0usize..9,
        pushes in 0usize..48,
    ) {
        let mut ring = TraceRing::with_capacity(capacity);
        for i in 0..pushes {
            // Stamp each record with its own index so survivorship is
            // checkable: at == seq (in ms) by construction.
            ring.push(Time::from_millis(i as u64), 7, TelemetryEvent::CacheHit);
        }
        prop_assert_eq!(ring.recorded(), pushes as u64);
        prop_assert_eq!(ring.len(), pushes.min(capacity));
        prop_assert_eq!(ring.evicted(), pushes.saturating_sub(capacity) as u64);
        let seqs: Vec<u64> = ring.iter().map(|r| r.seq).collect();
        let expected: Vec<u64> =
            (pushes.saturating_sub(capacity) as u64..pushes as u64).collect();
        prop_assert_eq!(seqs, expected, "survivors must be the newest, in order");
        for r in ring.iter() {
            prop_assert_eq!(r.at.as_millis(), r.seq);
            prop_assert_eq!(r.job_slot, 7);
        }
    }

    /// Mounting a telemetry sink never perturbs the simulation: the
    /// per-run summaries (and aggregate statistics, apart from the
    /// attached snapshot) are bit-identical to an unmounted batch at any
    /// worker count — and the snapshot itself is thread-count-invariant
    /// once the (deliberately schedule-dependent) steal counter is set
    /// aside.
    #[test]
    fn mounted_telemetry_never_perturbs_results(
        master_seed in 0u64..2,
        threads in 1usize..5,
    ) {
        let (unmounted, _) = observed_mini_fleet(master_seed, 1, false);
        let (mounted, snap) = observed_mini_fleet(master_seed, threads, true);
        prop_assert_eq!(&unmounted.records, &mounted.records);
        let mut stats = mounted.stats.clone();
        prop_assert!(stats.telemetry.is_some(), "mounted stats carry a snapshot");
        stats.telemetry = None;
        prop_assert_eq!(&unmounted.stats, &stats);
        let (_, single_snap) = observed_mini_fleet(master_seed, 1, true);
        prop_assert_eq!(snap, single_snap);
    }

    /// Duration arithmetic round-trips through the unit constructors.
    #[test]
    fn duration_roundtrip(us in 0u64..10_000_000) {
        let d = Duration::from_micros(us);
        prop_assert_eq!(d.as_micros(), us);
        prop_assert_eq!(Duration::from_nanos(d.as_nanos()), d);
        let t = Time::ZERO + d;
        prop_assert_eq!(t - Time::ZERO, d);
    }
}
