//! Smoke tests over the `saav-bench` experiment harness: every experiment
//! entry point the `repro` binary dispatches to (E1–E10 plus the A1–A3
//! ablations) must complete on its fixed internal seed and produce a
//! non-empty, renderable table.

use saav_bench::{
    exp_can, exp_city, exp_fleet, exp_learn, exp_mcc, exp_monitor, exp_platoon, exp_propagation,
    exp_scenarios, exp_skills,
};
use saav_sim::report::Table;

/// Asserts the experiment produced data rows and a renderable table.
fn assert_populated(id: &str, table: &Table) {
    assert!(!table.is_empty(), "{id}: table has no data rows");
    let rendered = table.render();
    assert!(!rendered.trim().is_empty(), "{id}: rendered table is empty");
    assert!(
        rendered.lines().count() > table.len(),
        "{id}: rendered table is missing its header"
    );
}

#[test]
fn e1_can_round_trip_completes() {
    assert_populated("e1", &exp_can::e1_table());
    assert_populated("e1b", &exp_can::e1_throughput_table());
    let (lo, hi) = exp_can::e1_added_range_us();
    assert!(lo > 0.0 && hi >= lo, "e1: added-latency range [{lo}, {hi}]");
}

#[test]
fn e2_fpga_break_even_completes() {
    assert_populated("e2", &exp_can::e2_table());
}

#[test]
fn e3_monitor_interference_completes() {
    assert_populated("e3", &exp_monitor::e3_table());
}

#[test]
fn e4_mcc_acceptance_completes() {
    assert_populated("e4", &exp_mcc::e4_table());
}

#[test]
fn e5_ability_detection_completes() {
    assert_populated("e5", &exp_skills::e5_table());
}

#[test]
fn e6_intrusion_strategies_completes() {
    assert_populated("e6", &exp_scenarios::e6_table());
}

#[test]
fn e7_thermal_stress_completes() {
    assert_populated("e7", &exp_scenarios::e7_table());
}

#[test]
fn e8_platoon_agreement_completes() {
    assert_populated("e8", &exp_platoon::e8_table());
    assert_populated("e8b", &exp_platoon::e8b_table());
}

#[test]
fn e9_risk_aware_routing_completes() {
    assert_populated("e9", &exp_platoon::e9_table());
}

#[test]
fn e10_propagation_completes() {
    assert_populated("e10", &exp_propagation::e10_table());
    assert_populated("e10b", &exp_propagation::e10b_fmea_table());
}

/// Smoke for the E11 entry point: a slice of the grid renders. The full
/// ≥24-run sweep is asserted in `exp_fleet`'s own tests and exercised in
/// release mode by CI's `repro -- e11` step.
#[test]
fn e11_fleet_sweep_completes() {
    use saav_core::fleet::FleetRunner;
    use saav_core::scenario::{ResponseStrategy, ScenarioFamily};
    let fleet = FleetRunner::new(exp_fleet::E11_MASTER_SEED).sweep(
        &[ScenarioFamily::Baseline, ScenarioFamily::Intrusion],
        &ResponseStrategy::ALL,
        1,
    );
    assert_eq!(fleet.records.len(), 6);
    assert_populated("e11", &exp_fleet::e11_runs_table(&fleet));
}

/// Smoke for the E12 entry points: a model trained on short captured
/// traces scores a grid slice and both tables render. The full train →
/// calibrate → 27-run sweep and its acceptance thresholds live in
/// `exp_learn`'s own tests and CI's `repro -- e12` step.
#[test]
fn e12_learned_monitor_completes() {
    use saav_core::fleet::FleetRunner;
    use saav_core::scenario::{ResponseStrategy, ScenarioFamily};
    use saav_learn::{LearnConfig, SelfAwarenessModel};
    use saav_sim::time::Duration;
    let jobs = |n: usize| -> Vec<_> {
        (0..n)
            .map(|_| {
                let mut s = ScenarioFamily::Baseline.build(ResponseStrategy::CrossLayer, 0);
                s.duration = Duration::from_secs(30);
                s
            })
            .collect()
    };
    let runner = FleetRunner::new(exp_learn::E12_TRAIN_SEED);
    let traces = runner.capture_traces(jobs(3));
    let model = SelfAwarenessModel::train(&traces, LearnConfig::default()).unwrap();
    let fleet = runner.with_model(model.clone()).run_scenarios(jobs(2));
    let e12 = exp_learn::E12Outcome { fleet, model };
    assert_eq!(e12.baseline_false_positives(), 0);
    assert_populated("e12", &exp_learn::e12_runs_table(&e12));
    assert_populated("e12b", &exp_learn::e12_summary_table(&e12));
}

/// Smoke for the E15 entry point: a cache-mounted slice of the grid runs
/// cold then warm, the warm pass is pure cache traffic, and the columnar
/// sink round-trips it. The full 27-run cold/warm grid and its
/// bit-identity assertions live in `exp_fleet`'s own tests and CI's
/// `repro -- e15` step.
#[test]
fn e15_memoized_sweep_completes() {
    use saav_core::cache::ResultCache;
    use saav_core::colstore::FleetColumns;
    use saav_core::fleet::FleetRunner;
    use saav_core::scenario::{ResponseStrategy, ScenarioFamily};
    let cache = ResultCache::in_memory();
    let runner = FleetRunner::new(exp_fleet::E11_MASTER_SEED).with_cache(cache.clone());
    let grid = || {
        runner.sweep(
            &[ScenarioFamily::Baseline, ScenarioFamily::Intrusion],
            &ResponseStrategy::ALL,
            1,
        )
    };
    let cold = grid();
    let warm = grid();
    assert_eq!(warm.records, cold.records);
    assert_eq!(cache.stats().hits, 6, "e15: warm slice must be all hits");
    let decoded = FleetColumns::from_bytes(&FleetColumns::from_records(&warm.records).to_bytes())
        .expect("e15: columnar round trip");
    assert_eq!(decoded.to_records(), warm.records);
    assert_eq!(decoded.stats(), warm.stats);
}

/// Smoke for the E14 entry point: the density sweep renders one row per
/// density and the densest scene really exercises the surrogate tier.
/// The latency-invariance acceptance thresholds live in `exp_city`'s own
/// tests and CI's `repro -- e14` step.
#[test]
fn e14_city_density_sweep_completes() {
    let table = exp_city::e14_table();
    assert_eq!(
        table.len(),
        exp_city::E14_DENSITIES.len(),
        "e14: one row per background density"
    );
    assert_populated("e14", &table);
}

#[test]
fn ablations_complete() {
    assert_populated("a1", &exp_skills::a1_table());
    assert_populated("a2", &exp_propagation::a2_table());
    assert_populated("a3", &exp_monitor::a3_table());
}

/// The experiments are seeded internally, so rerunning one must reproduce
/// the identical table — this is what makes the repro harness a repro.
#[test]
fn experiments_are_deterministic() {
    assert_eq!(
        exp_can::e1_table().render(),
        exp_can::e1_table().render(),
        "e1 is not deterministic across runs"
    );
    assert_eq!(
        exp_propagation::e10_table().render(),
        exp_propagation::e10_table().render(),
        "e10 is not deterministic across runs"
    );
}
