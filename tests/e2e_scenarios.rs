//! End-to-end invariants of the assembled self-aware vehicle across
//! scenarios, strategies and seeds — the paper's qualitative claims as
//! executable checks.

use saav::core::layer::{Directive, DirectiveBoard, Layer, Posting};
use saav::core::{ResponseStrategy, Scenario, SelfAwareVehicle};
use saav::skills::decision::DrivingMode;

#[test]
fn no_strategy_ever_collides_in_the_intrusion_scenario() {
    for strategy in [
        ResponseStrategy::SingleLayer,
        ResponseStrategy::CrossLayer,
        ResponseStrategy::ObjectiveStop,
    ] {
        for seed in [1, 42, 1234] {
            let out = SelfAwareVehicle::run(Scenario::intrusion(strategy, seed));
            assert!(!out.collision, "{strategy:?} seed {seed}");
        }
    }
}

#[test]
fn cross_layer_keeps_the_mission_objective_stop_aborts_it() {
    for seed in [1, 42] {
        let cross = SelfAwareVehicle::run(Scenario::intrusion(ResponseStrategy::CrossLayer, seed));
        let stop =
            SelfAwareVehicle::run(Scenario::intrusion(ResponseStrategy::ObjectiveStop, seed));
        assert!(cross.distance_m > stop.distance_m, "seed {seed}");
        assert!(
            matches!(stop.final_mode, DrivingMode::SafeStop),
            "seed {seed}"
        );
        assert!(
            !matches!(cross.final_mode, DrivingMode::SafeStop),
            "seed {seed}: cross-layer should keep driving"
        );
    }
}

#[test]
fn propagation_chains_bounded_in_every_run() {
    for strategy in [
        ResponseStrategy::SingleLayer,
        ResponseStrategy::CrossLayer,
        ResponseStrategy::ObjectiveStop,
    ] {
        for scenario in [
            Scenario::intrusion(strategy, 7),
            Scenario::thermal(75.0, strategy, 7),
            Scenario::fog(0.8, 7),
        ] {
            let out = SelfAwareVehicle::run(scenario);
            assert!(
                out.max_hops <= Layer::ALL.len(),
                "{}: {} hops",
                out.label,
                out.max_hops
            );
        }
    }
}

#[test]
fn baseline_runs_are_quiet() {
    let out = SelfAwareVehicle::run(Scenario::baseline(9));
    assert!(
        out.actions.is_empty(),
        "unexpected actions: {:?}",
        out.actions
    );
    assert!(matches!(out.final_mode, DrivingMode::Normal));
    assert_eq!(out.conflicts, 0);
    assert!(out.ability.min().unwrap_or(1.0) > 0.9);
}

#[test]
fn fog_scenario_degrades_ability_and_caps_speed() {
    let out = SelfAwareVehicle::run(Scenario::fog(0.85, 11));
    // Ability sinks as the fog builds …
    assert!(out.ability.min().unwrap() < 0.7, "{:?}", out.ability.min());
    // … and the vehicle leaves Normal mode.
    assert!(
        !matches!(out.final_mode, DrivingMode::Normal),
        "mode {}",
        out.final_mode
    );
    assert!(!out.collision);
}

/// The paper's "conflicting decisions" guard: a safety-layer shutdown beats
/// an ability-layer keep-alive on the same subject, deterministically, and
/// the conflict is counted rather than silently dropped.
#[test]
fn directive_arbitration_is_deterministic_across_orders() {
    for order_flip in [false, true] {
        let mut board = DirectiveBoard::new();
        let posts: Vec<(Layer, Directive)> = if order_flip {
            vec![
                (Layer::Safety, Directive::Shutdown),
                (Layer::Ability, Directive::KeepAlive),
            ]
        } else {
            vec![
                (Layer::Ability, Directive::KeepAlive),
                (Layer::Safety, Directive::Shutdown),
            ]
        };
        for (layer, directive) in posts {
            let _ = board.post(layer, "brake_rear", directive);
        }
        let active: Vec<&Directive> = board.directives_for("brake_rear").collect();
        assert_eq!(active, vec![&Directive::Shutdown], "flip={order_flip}");
        assert_eq!(board.conflicts_detected(), 1);
    }
}

/// Re-posting after losing arbitration must not flip the decision.
#[test]
fn losing_layer_cannot_override_by_retrying() {
    let mut board = DirectiveBoard::new();
    board.post(Layer::Safety, "brake_rear", Directive::Shutdown);
    for _ in 0..10 {
        let posting = board.post(Layer::Ability, "brake_rear", Directive::KeepAlive);
        assert!(matches!(posting, Posting::Rejected { .. }));
    }
    let active: Vec<&Directive> = board.directives_for("brake_rear").collect();
    assert_eq!(active, vec![&Directive::Shutdown]);
}

/// Regression pin for the decomposition of the old `assembly` monolith into
/// `scenario`/`vehicle`/`runner`/`outcome`: the four legacy scenarios must
/// produce bit-identical outcomes to the pre-split implementation (values
/// captured from the monolith at the same seeds).
#[test]
fn legacy_scenarios_match_pre_split_outcomes() {
    struct Pin {
        scenario: Scenario,
        distance_m: f64,
        min_ttc_s: f64,
        first_detection: Option<Time>,
        mitigated_at: Option<Time>,
        max_hops: usize,
    }
    use saav::sim::time::Time;
    let pins = [
        Pin {
            scenario: Scenario::baseline(42),
            distance_m: 2655.5987078887974,
            min_ttc_s: 22.706776278531862,
            first_detection: None,
            mitigated_at: None,
            max_hops: 0,
        },
        Pin {
            scenario: Scenario::intrusion(ResponseStrategy::CrossLayer, 42),
            distance_m: 1986.045671846045,
            min_ttc_s: 19.37930592291164,
            first_detection: Some(Time::from_secs(30)),
            mitigated_at: Some(Time::from_secs(30)),
            max_hops: 3,
        },
        Pin {
            scenario: Scenario::intrusion(ResponseStrategy::SingleLayer, 42),
            distance_m: 2415.5982029119687,
            min_ttc_s: 4.9973027014473335,
            first_detection: Some(Time::from_secs(30)),
            mitigated_at: Some(Time::from_secs(120)),
            max_hops: 1,
        },
        Pin {
            scenario: Scenario::intrusion(ResponseStrategy::ObjectiveStop, 42),
            distance_m: 767.6873638396913,
            min_ttc_s: 22.706776278531862,
            first_detection: Some(Time::from_secs(30)),
            mitigated_at: Some(Time::from_secs(30)),
            max_hops: 4,
        },
        Pin {
            scenario: Scenario::thermal(75.0, ResponseStrategy::CrossLayer, 7),
            distance_m: 4489.997261188965,
            min_ttc_s: 22.772310460328885,
            first_detection: Some(Time::from_millis(132_670)),
            mitigated_at: Some(Time::from_millis(132_670)),
            max_hops: 4,
        },
        Pin {
            scenario: Scenario::fog(0.85, 11),
            distance_m: 1265.6772459548924,
            min_ttc_s: 22.724742954105963,
            first_detection: Some(Time::from_millis(45_990)),
            mitigated_at: Some(Time::from_millis(54_250)),
            max_hops: 1,
        },
    ];
    for pin in pins {
        let label = pin.scenario.label.clone();
        let out = SelfAwareVehicle::run(pin.scenario);
        assert_eq!(out.distance_m, pin.distance_m, "{label}: distance");
        assert_eq!(out.min_ttc_s, pin.min_ttc_s, "{label}: min TTC");
        assert_eq!(
            out.first_detection, pin.first_detection,
            "{label}: detection"
        );
        assert_eq!(out.mitigated_at, pin.mitigated_at, "{label}: mitigation");
        assert_eq!(out.max_hops, pin.max_hops, "{label}: hops");
        assert!(!out.collision, "{label}: collision");
    }
}

#[test]
fn determinism_same_seed_same_outcome() {
    let a = SelfAwareVehicle::run(Scenario::intrusion(ResponseStrategy::CrossLayer, 5));
    let b = SelfAwareVehicle::run(Scenario::intrusion(ResponseStrategy::CrossLayer, 5));
    assert_eq!(a.distance_m, b.distance_m);
    assert_eq!(a.first_detection, b.first_detection);
    assert_eq!(a.actions, b.actions);
    assert_eq!(a.max_hops, b.max_hops);
}
