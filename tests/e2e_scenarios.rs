//! End-to-end invariants of the assembled self-aware vehicle across
//! scenarios, strategies and seeds — the paper's qualitative claims as
//! executable checks.

use saav::core::layer::{Directive, DirectiveBoard, Layer, Posting};
use saav::core::{ResponseStrategy, Scenario, SelfAwareVehicle};
use saav::skills::decision::DrivingMode;

#[test]
fn no_strategy_ever_collides_in_the_intrusion_scenario() {
    for strategy in [
        ResponseStrategy::SingleLayer,
        ResponseStrategy::CrossLayer,
        ResponseStrategy::ObjectiveStop,
    ] {
        for seed in [1, 42, 1234] {
            let out = SelfAwareVehicle::run(Scenario::intrusion(strategy, seed));
            assert!(!out.collision, "{strategy:?} seed {seed}");
        }
    }
}

#[test]
fn cross_layer_keeps_the_mission_objective_stop_aborts_it() {
    for seed in [1, 42] {
        let cross = SelfAwareVehicle::run(Scenario::intrusion(ResponseStrategy::CrossLayer, seed));
        let stop =
            SelfAwareVehicle::run(Scenario::intrusion(ResponseStrategy::ObjectiveStop, seed));
        assert!(cross.distance_m > stop.distance_m, "seed {seed}");
        assert!(
            matches!(stop.final_mode, DrivingMode::SafeStop),
            "seed {seed}"
        );
        assert!(
            !matches!(cross.final_mode, DrivingMode::SafeStop),
            "seed {seed}: cross-layer should keep driving"
        );
    }
}

#[test]
fn propagation_chains_bounded_in_every_run() {
    for strategy in [
        ResponseStrategy::SingleLayer,
        ResponseStrategy::CrossLayer,
        ResponseStrategy::ObjectiveStop,
    ] {
        for scenario in [
            Scenario::intrusion(strategy, 7),
            Scenario::thermal(75.0, strategy, 7),
            Scenario::fog(0.8, 7),
        ] {
            let out = SelfAwareVehicle::run(scenario);
            assert!(
                out.max_hops <= Layer::ALL.len(),
                "{}: {} hops",
                out.label,
                out.max_hops
            );
        }
    }
}

#[test]
fn baseline_runs_are_quiet() {
    let out = SelfAwareVehicle::run(Scenario::baseline(9));
    assert!(
        out.actions.is_empty(),
        "unexpected actions: {:?}",
        out.actions
    );
    assert!(matches!(out.final_mode, DrivingMode::Normal));
    assert_eq!(out.conflicts, 0);
    assert!(out.ability.min().unwrap_or(1.0) > 0.9);
}

#[test]
fn fog_scenario_degrades_ability_and_caps_speed() {
    let out = SelfAwareVehicle::run(Scenario::fog(0.85, 11));
    // Ability sinks as the fog builds …
    assert!(out.ability.min().unwrap() < 0.7, "{:?}", out.ability.min());
    // … and the vehicle leaves Normal mode.
    assert!(
        !matches!(out.final_mode, DrivingMode::Normal),
        "mode {}",
        out.final_mode
    );
    assert!(!out.collision);
}

/// The paper's "conflicting decisions" guard: a safety-layer shutdown beats
/// an ability-layer keep-alive on the same subject, deterministically, and
/// the conflict is counted rather than silently dropped.
#[test]
fn directive_arbitration_is_deterministic_across_orders() {
    for order_flip in [false, true] {
        let mut board = DirectiveBoard::new();
        let posts: Vec<(Layer, Directive)> = if order_flip {
            vec![
                (Layer::Safety, Directive::Shutdown),
                (Layer::Ability, Directive::KeepAlive),
            ]
        } else {
            vec![
                (Layer::Ability, Directive::KeepAlive),
                (Layer::Safety, Directive::Shutdown),
            ]
        };
        for (layer, directive) in posts {
            let _ = board.post(layer, "brake_rear", directive);
        }
        let active: Vec<&Directive> = board.directives_for("brake_rear").collect();
        assert_eq!(active, vec![&Directive::Shutdown], "flip={order_flip}");
        assert_eq!(board.conflicts_detected(), 1);
    }
}

/// Re-posting after losing arbitration must not flip the decision.
#[test]
fn losing_layer_cannot_override_by_retrying() {
    let mut board = DirectiveBoard::new();
    board.post(Layer::Safety, "brake_rear", Directive::Shutdown);
    for _ in 0..10 {
        let posting = board.post(Layer::Ability, "brake_rear", Directive::KeepAlive);
        assert!(matches!(posting, Posting::Rejected { .. }));
    }
    let active: Vec<&Directive> = board.directives_for("brake_rear").collect();
    assert_eq!(active, vec![&Directive::Shutdown]);
}

/// Regression pin for the decomposition of the old `assembly` monolith into
/// `scenario`/`vehicle`/`runner`/`outcome`: the four legacy scenarios must
/// produce bit-identical outcomes to the pre-split implementation (values
/// captured from the monolith at the same seeds).
#[test]
fn legacy_scenarios_match_pre_split_outcomes() {
    struct Pin {
        scenario: Scenario,
        distance_m: f64,
        min_ttc_s: f64,
        first_detection: Option<Time>,
        mitigated_at: Option<Time>,
        max_hops: usize,
    }
    use saav::sim::time::Time;
    let pins = [
        Pin {
            scenario: Scenario::baseline(42),
            distance_m: 2655.5987078887974,
            min_ttc_s: 22.706776278531862,
            first_detection: None,
            mitigated_at: None,
            max_hops: 0,
        },
        Pin {
            scenario: Scenario::intrusion(ResponseStrategy::CrossLayer, 42),
            distance_m: 1986.045671846045,
            min_ttc_s: 19.37930592291164,
            first_detection: Some(Time::from_secs(30)),
            mitigated_at: Some(Time::from_secs(30)),
            max_hops: 3,
        },
        Pin {
            scenario: Scenario::intrusion(ResponseStrategy::SingleLayer, 42),
            distance_m: 2415.5982029119687,
            min_ttc_s: 4.9973027014473335,
            first_detection: Some(Time::from_secs(30)),
            mitigated_at: Some(Time::from_secs(120)),
            max_hops: 1,
        },
        Pin {
            scenario: Scenario::intrusion(ResponseStrategy::ObjectiveStop, 42),
            distance_m: 767.6873638396913,
            min_ttc_s: 22.706776278531862,
            first_detection: Some(Time::from_secs(30)),
            mitigated_at: Some(Time::from_secs(30)),
            max_hops: 4,
        },
        Pin {
            scenario: Scenario::thermal(75.0, ResponseStrategy::CrossLayer, 7),
            distance_m: 4489.997261188965,
            min_ttc_s: 22.772310460328885,
            first_detection: Some(Time::from_millis(132_670)),
            mitigated_at: Some(Time::from_millis(132_670)),
            max_hops: 4,
        },
        Pin {
            scenario: Scenario::fog(0.85, 11),
            distance_m: 1265.6772459548924,
            min_ttc_s: 22.724742954105963,
            first_detection: Some(Time::from_millis(45_990)),
            mitigated_at: Some(Time::from_millis(54_250)),
            max_hops: 1,
        },
    ];
    for pin in pins {
        let label = pin.scenario.label.clone();
        let out = SelfAwareVehicle::run(pin.scenario);
        assert_eq!(out.distance_m, pin.distance_m, "{label}: distance");
        assert_eq!(out.min_ttc_s, pin.min_ttc_s, "{label}: min TTC");
        assert_eq!(
            out.first_detection, pin.first_detection,
            "{label}: detection"
        );
        assert_eq!(out.mitigated_at, pin.mitigated_at, "{label}: mitigation");
        assert_eq!(out.max_hops, pin.max_hops, "{label}: hops");
        assert!(!out.collision, "{label}: collision");
    }
}

/// Regression pin for the multi-vehicle co-simulation refactor: the whole
/// pre-existing single-vehicle family grid (9 families × 3 strategies at
/// the E11 master seed) must stay bit-identical to its pre-refactor
/// outcomes. Values captured immediately before the runner was generalized
/// into `RunContext`/`cosim`.
#[test]
fn single_vehicle_family_grid_matches_pre_refactor_outcomes() {
    use saav::core::fleet::FleetRunner;
    use saav::core::ScenarioFamily;
    use saav::sim::time::Time;

    // (label, distance_m, min_ttc_s, first_detection_ms, mitigated_ms,
    //  collision)
    #[allow(clippy::type_complexity)]
    let pins: [(&str, f64, f64, Option<u64>, Option<u64>, bool); 27] = [
        (
            "baseline/SingleLayer",
            2655.6096207429023,
            22.73132662840534,
            None,
            None,
            false,
        ),
        (
            "baseline/CrossLayer",
            2655.5993874472642,
            22.68218580640534,
            None,
            None,
            false,
        ),
        (
            "baseline/ObjectiveStop",
            2655.6046809133177,
            22.672082326576465,
            None,
            None,
            false,
        ),
        (
            "intrusion/SingleLayer",
            2415.5926939318942,
            4.985810373716022,
            Some(30000),
            Some(120000),
            false,
        ),
        (
            "intrusion/CrossLayer",
            1985.9007293542893,
            19.270391757088138,
            Some(30000),
            Some(30000),
            false,
        ),
        (
            "intrusion/ObjectiveStop",
            767.693542151088,
            22.710907787680743,
            Some(30000),
            Some(30000),
            false,
        ),
        (
            "thermal/SingleLayer",
            5295.580078982967,
            22.780172236718617,
            Some(132700),
            Some(239990),
            false,
        ),
        (
            "thermal/CrossLayer",
            4490.296144162489,
            22.616517346213577,
            Some(132710),
            Some(132710),
            false,
        ),
        (
            "thermal/ObjectiveStop",
            3026.4188108250287,
            22.72226135831422,
            Some(132670),
            Some(240000),
            false,
        ),
        (
            "fog/SingleLayer",
            1275.5669023736625,
            22.69903465722875,
            Some(46400),
            Some(56810),
            false,
        ),
        (
            "fog/CrossLayer",
            1207.826396779265,
            22.684994561829004,
            Some(42810),
            Some(53850),
            false,
        ),
        (
            "fog/ObjectiveStop",
            1126.0139557260884,
            22.681193837712332,
            Some(46280),
            Some(52440),
            false,
        ),
        (
            "fog+intrusion/SingleLayer",
            1234.9657918891098,
            22.628845529277353,
            Some(42630),
            Some(120000),
            false,
        ),
        (
            "fog+intrusion/CrossLayer",
            1165.4933278888343,
            22.726667400091568,
            Some(39500),
            Some(53070),
            false,
        ),
        (
            "fog+intrusion/ObjectiveStop",
            1001.8819126678214,
            22.691368479688194,
            Some(40620),
            Some(47420),
            false,
        ),
        (
            "thermal+fog/SingleLayer",
            3975.5191666865085,
            22.745582331584384,
            Some(121320),
            Some(179990),
            false,
        ),
        (
            "thermal+fog/CrossLayer",
            2985.8604754186545,
            22.70941152194243,
            Some(121340),
            Some(179990),
            false,
        ),
        (
            "thermal+fog/ObjectiveStop",
            2777.44913106793,
            22.64352313602047,
            Some(121350),
            Some(180000),
            false,
        ),
        (
            "radar-dropout/SingleLayer",
            993.4216784389323,
            22.60704209967471,
            Some(40050),
            Some(40150),
            false,
        ),
        (
            "radar-dropout/CrossLayer",
            993.6476139243563,
            22.705820647941955,
            Some(40050),
            Some(40150),
            false,
        ),
        (
            "radar-dropout/ObjectiveStop",
            988.7173696635568,
            22.69884240452051,
            Some(40050),
            Some(40150),
            false,
        ),
        (
            "radar-noise/SingleLayer",
            1988.6851468947136,
            22.75651853908659,
            Some(30340),
            Some(48500),
            false,
        ),
        (
            "radar-noise/CrossLayer",
            1988.5826060361362,
            22.829597503036634,
            Some(30280),
            Some(50550),
            false,
        ),
        (
            "radar-noise/ObjectiveStop",
            774.6463530248625,
            22.721994500780408,
            Some(30310),
            Some(35170),
            false,
        ),
        (
            "stop-and-go/SingleLayer",
            1895.610208063012,
            4.427071924015948,
            None,
            None,
            false,
        ),
        (
            "stop-and-go/CrossLayer",
            1895.603270116097,
            4.418488324382605,
            None,
            None,
            false,
        ),
        (
            "stop-and-go/ObjectiveStop",
            1895.5906296472997,
            4.417741157657079,
            None,
            None,
            false,
        ),
    ];

    let fleet = FleetRunner::new(2024).sweep(&ScenarioFamily::ALL, &ResponseStrategy::ALL, 1);
    assert_eq!(fleet.records.len(), pins.len());
    for (rec, pin) in fleet.records.iter().zip(&pins) {
        let (label, distance_m, min_ttc_s, detected_ms, mitigated_ms, collision) = *pin;
        let s = &rec.summary;
        assert_eq!(s.label, label);
        assert_eq!(s.distance_m, distance_m, "{label}: distance");
        assert_eq!(s.min_ttc_s, min_ttc_s, "{label}: min TTC");
        assert_eq!(
            s.first_detection,
            detected_ms.map(Time::from_millis),
            "{label}: detection"
        );
        assert_eq!(
            s.mitigated_at,
            mitigated_ms.map(Time::from_millis),
            "{label}: mitigation"
        );
        assert_eq!(s.collision, collision, "{label}: collision");
        assert!(s.platoon.is_none(), "{label}: single-vehicle run");
    }
}

#[test]
fn determinism_same_seed_same_outcome() {
    let a = SelfAwareVehicle::run(Scenario::intrusion(ResponseStrategy::CrossLayer, 5));
    let b = SelfAwareVehicle::run(Scenario::intrusion(ResponseStrategy::CrossLayer, 5));
    assert_eq!(a.distance_m, b.distance_m);
    assert_eq!(a.first_detection, b.first_detection);
    assert_eq!(a.actions, b.actions);
    assert_eq!(a.max_hops, b.max_hops);
}
