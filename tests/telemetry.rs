//! End-to-end tests of the telemetry layer: mounted traces are
//! deterministic across thread counts, the stepped-run sink sees the
//! escalation a scripted run produces, the chrome-tracing export is
//! well-formed JSON, and a single-worker fleet never counts a steal.

use saav::core::cache::ResultCache;
use saav::core::fleet::FleetRunner;
use saav::core::runner::{self, SteppedRun};
use saav::core::scenario::{ResponseStrategy, Scenario, ScenarioEvent, ScenarioFamily};
use saav::core::telemetry::{Counter, Telemetry, TelemetryEvent};
use saav::sim::time::{Duration, Time};

fn intrusion_jobs() -> Vec<Scenario> {
    ResponseStrategy::ALL
        .iter()
        .map(|&strategy| {
            Scenario::builder(format!("tel/{strategy:?}"))
                .strategy(strategy)
                .duration(Duration::from_secs(8))
                .at(Time::from_secs(2), ScenarioEvent::CompromiseRearBrake)
                .build()
        })
        .collect()
}

/// The merged event trace of a cache-mounted cold+warm sweep is
/// bit-identical across worker counts: canonical `(at, job_slot, seq)`
/// order hides which worker ran which job.
#[test]
fn mounted_trace_is_identical_across_thread_counts() {
    let observe = |threads: usize| {
        let sink = Telemetry::default();
        let fleet = FleetRunner::new(99)
            .with_threads(threads)
            .with_cache(ResultCache::in_memory())
            .with_telemetry(sink.clone());
        fleet.run_scenarios(intrusion_jobs());
        fleet.run_scenarios(intrusion_jobs());
        sink.events()
    };
    let single = observe(1);
    assert!(
        single
            .iter()
            .any(|r| matches!(r.event, TelemetryEvent::CacheHit)),
        "warm sweep must surface cache hits"
    );
    for threads in [2, 4] {
        assert_eq!(
            single,
            observe(threads),
            "trace diverged at {threads} threads"
        );
    }
}

/// A stepped run with a sink mounted streams the scripted escalation into
/// it — and produces the same outcome as the unmounted convenience entry
/// point.
#[test]
fn stepped_run_with_telemetry_sees_the_escalation() {
    let scenario = ScenarioFamily::Intrusion.build(ResponseStrategy::CrossLayer, 5);
    let sink = Telemetry::default();
    let mut run = SteppedRun::with_telemetry(&scenario, &sink);
    while run.now_millis() < scenario.duration.as_millis() {
        run.tick();
    }
    let observed = run.finish();
    assert_eq!(observed.summary(), runner::run(scenario).summary());
    let snap = sink.snapshot();
    assert!(snap.counter(Counter::AnomaliesRaised) > 0);
    assert!(snap.counter(Counter::EscalationsRouted) > 0);
    assert!(
        snap.detection_latency.total() > 0,
        "latency histogram empty"
    );
    assert!(sink
        .events()
        .iter()
        .any(|r| matches!(r.event, TelemetryEvent::EscalationRouted { .. })));
}

/// With `SAAV_THREADS=1` the fleet runs as an inline loop — nothing can
/// be stolen, so the registry's steal counter must stay at zero.
#[test]
fn single_worker_fleet_counts_no_steals() {
    std::env::set_var("SAAV_THREADS", "1");
    let sink = Telemetry::default();
    let fleet = FleetRunner::new(7).with_telemetry(sink.clone());
    let out = fleet.run_scenarios(intrusion_jobs());
    assert_eq!(out.records.len(), 3);
    assert_eq!(sink.steals(), 0, "inline fleet registered a steal");
    assert_eq!(sink.snapshot().counter(Counter::ShardSteals), 0);
}

/// The chrome-tracing export parses as a single JSON object with the
/// fields Perfetto requires, checked by a hand-rolled validator (the
/// workspace deliberately has no JSON dependency).
#[test]
fn chrome_trace_export_is_well_formed_json() {
    let sink = Telemetry::default();
    runner::run_observed(
        ScenarioFamily::Intrusion.build(ResponseStrategy::CrossLayer, 5),
        None,
        &sink,
    );
    let json = sink.chrome_trace_json();
    let mut p = Json {
        b: json.as_bytes(),
        i: 0,
    };
    p.value();
    p.ws();
    assert_eq!(p.i, p.b.len(), "trailing garbage after the JSON document");
    assert!(json.starts_with('{'), "top level must be an object");
    assert!(json.contains("\"traceEvents\":["));
    assert!(json.contains("\"displayTimeUnit\":\"ms\""));
    let events = json.matches("\"ph\":\"i\"").count();
    assert!(events > 0, "no instant events exported");
    assert_eq!(json.matches("\"ts\":").count(), events);
    assert_eq!(json.matches("\"pid\":").count(), events);
}

/// A minimal recursive-descent JSON validator: panics (failing the test)
/// on any syntax error.
struct Json<'a> {
    b: &'a [u8],
    i: usize,
}

impl Json<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) {
        assert_eq!(
            self.b.get(self.i),
            Some(&c),
            "expected `{}` at byte {}",
            c as char,
            self.i
        );
        self.i += 1;
    }

    fn value(&mut self) {
        self.ws();
        match self.b.get(self.i) {
            Some(b'{') => {
                self.i += 1;
                self.ws();
                if self.b.get(self.i) == Some(&b'}') {
                    self.i += 1;
                    return;
                }
                loop {
                    self.ws();
                    self.string();
                    self.ws();
                    self.expect(b':');
                    self.value();
                    self.ws();
                    match self.b.get(self.i) {
                        Some(b',') => self.i += 1,
                        Some(b'}') => {
                            self.i += 1;
                            return;
                        }
                        other => panic!("expected `,` or `}}`, got {other:?}"),
                    }
                }
            }
            Some(b'[') => {
                self.i += 1;
                self.ws();
                if self.b.get(self.i) == Some(&b']') {
                    self.i += 1;
                    return;
                }
                loop {
                    self.value();
                    self.ws();
                    match self.b.get(self.i) {
                        Some(b',') => self.i += 1,
                        Some(b']') => {
                            self.i += 1;
                            return;
                        }
                        other => panic!("expected `,` or `]`, got {other:?}"),
                    }
                }
            }
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if *c == b'-' || c.is_ascii_digit() => self.number(),
            other => panic!("unexpected {other:?} at byte {}", self.i),
        }
    }

    fn string(&mut self) {
        self.expect(b'"');
        while let Some(&c) = self.b.get(self.i) {
            match c {
                b'"' => {
                    self.i += 1;
                    return;
                }
                b'\\' => self.i += 2,
                _ => {
                    assert!(c >= 0x20, "unescaped control byte in string");
                    self.i += 1;
                }
            }
        }
        panic!("unterminated string");
    }

    fn literal(&mut self, lit: &str) {
        assert!(
            self.b[self.i..].starts_with(lit.as_bytes()),
            "bad literal at byte {}",
            self.i
        );
        self.i += lit.len();
    }

    fn number(&mut self) {
        let start = self.i;
        while let Some(&c) = self.b.get(self.i) {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.i += 1;
            } else {
                break;
            }
        }
        assert!(
            self.b[start..self.i].iter().any(|c| c.is_ascii_digit()),
            "empty number at byte {start}"
        );
    }
}
