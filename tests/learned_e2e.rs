//! End-to-end invariants of the learned self-awareness monitor mounted in
//! the assembled vehicle: transparency on nominal runs, detection on
//! disturbed ones, and the learn-then-monitor pipeline over the fleet.

use saav::core::fleet::FleetRunner;
use saav::core::scenario::{ResponseStrategy, Scenario, ScenarioFamily};
use saav::core::vehicle::SelfAwareVehicle;
use saav::core::LEARNED_SIGNALS;
use saav::learn::{LearnConfig, SelfAwarenessModel, SignalTrace};
use saav::sim::time::{Duration, Time};

/// Short baseline jobs so training stays cheap; the full-length pipeline
/// is exercised by E12 in `saav-bench`.
fn short_baselines(n: usize, secs: u64) -> Vec<Scenario> {
    (0..n)
        .map(|_| {
            let mut s = ScenarioFamily::Baseline.build(ResponseStrategy::CrossLayer, 0);
            s.duration = Duration::from_secs(secs);
            s
        })
        .collect()
}

fn trained_model(master_seed: u64) -> (FleetRunner, SelfAwarenessModel) {
    let fleet = FleetRunner::new(master_seed);
    // Five runs give the warm-up transient enough seed coverage that the
    // calibrated threshold generalizes to unseen seeds (cf. E12's larger
    // training batch).
    let traces = fleet.capture_traces(short_baselines(5, 40));
    let model = SelfAwarenessModel::train(&traces, LearnConfig::default())
        .expect("captured nominal traces train");
    (fleet, model)
}

/// Mounting the learned monitor on a calibration-set run changes nothing:
/// the scorer never crosses its threshold, so the run is bit-identical to
/// the unmonitored one.
#[test]
fn mounted_model_is_transparent_on_calibration_runs() {
    let (fleet, model) = trained_model(2024);
    let plain = fleet.run_scenarios(short_baselines(3, 40));
    let scored = fleet
        .clone()
        .with_model(model)
        .run_scenarios(short_baselines(3, 40));
    for (p, s) in plain.records.iter().zip(&scored.records) {
        assert_eq!(
            s.summary.first_model_deviation, None,
            "{}: fired on its own calibration set",
            s.summary.label
        );
        assert_eq!(p.summary.distance_m, s.summary.distance_m);
        assert_eq!(p.summary.first_detection, s.summary.first_detection);
        assert_eq!(p.summary.final_mode, s.summary.final_mode);
    }
}

/// A disturbance the contract monitors cannot see (stop-and-go traffic is
/// mechanically healthy) is flagged by the learned monitor, and the
/// deviation escalates into a real containment response.
#[test]
fn learned_monitor_flags_non_contract_disturbances() {
    let (_, model) = trained_model(2024);
    let mut scenario = ScenarioFamily::StopAndGo.build(ResponseStrategy::CrossLayer, 5);
    scenario.duration = Duration::from_secs(45);
    let out = SelfAwareVehicle::run_with_model(scenario, &model);
    assert!(
        out.first_model_deviation.is_some(),
        "stop-and-go must deviate from the learned highway model"
    );
    // The first lead braking starts at t = 20 s; detection follows it.
    let det = out.first_model_deviation.unwrap();
    assert!(det >= Time::from_secs(20), "detected at {det}");
    // The deviation routed through the ability layer's containment.
    assert!(!out.actions.is_empty(), "no containment response");
    assert!(out.model_score.max().unwrap() > model.threshold());
}

/// The scored run records the abnormality series and the trace captures
/// the canonical signal set.
#[test]
fn scored_runs_record_model_series_and_traces() {
    let (_, model) = trained_model(7);
    let mut scenario = Scenario::baseline(9);
    scenario.duration = Duration::from_secs(20);
    let out = SelfAwareVehicle::run_with_model(scenario, &model);
    assert_eq!(out.model_score.len(), 20);
    let trace = out.signal_trace();
    assert_eq!(trace.signals(), LEARNED_SIGNALS);
    assert_eq!(trace.len(), 20);
    // Unscored runs leave the series empty.
    let mut plain = Scenario::baseline(9);
    plain.duration = Duration::from_secs(20);
    assert!(SelfAwareVehicle::run(plain).model_score.is_empty());
}

/// Calibrating on additional nominal traces only raises the threshold,
/// and the model then stays quiet on exactly those runs.
#[test]
fn calibration_extends_the_false_positive_free_set() {
    let (_, mut model) = trained_model(2024);
    let before = model.threshold();
    // A baseline at an unrelated seed, longer than the training runs.
    let other = FleetRunner::new(555);
    let extra = other.capture_traces(short_baselines(2, 60));
    model.calibrate(&extra);
    assert!(model.threshold() >= before);
    let scored = other
        .with_model(model)
        .run_scenarios(short_baselines(2, 60));
    for rec in &scored.records {
        assert_eq!(
            rec.summary.first_model_deviation, None,
            "{}",
            rec.summary.label
        );
    }
}

/// `SignalTrace::from_series` and the fleet trace capture agree.
#[test]
fn capture_matches_outcome_series() {
    let fleet = FleetRunner::new(11);
    let traces = fleet.capture_traces(short_baselines(1, 15));
    assert_eq!(traces.len(), 1);
    let mut scenario = short_baselines(1, 15).remove(0);
    // The fleet runner derives job 0's seed from the master seed.
    scenario.seed = saav::sim::rng::derive_seed(11, 0);
    let out = SelfAwareVehicle::run(scenario);
    assert_eq!(
        traces[0],
        out.signal_trace(),
        "fleet capture must equal the run's own signal trace"
    );
    assert_eq!(
        traces[0],
        SignalTrace::from_series(&[
            (LEARNED_SIGNALS[0], &out.speed),
            (LEARNED_SIGNALS[1], &out.ability),
            (LEARNED_SIGNALS[2], &out.miss_rate),
            (LEARNED_SIGNALS[3], &out.temp_c),
            (LEARNED_SIGNALS[4], &out.speed_factor),
        ])
    );
}
